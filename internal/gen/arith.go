package gen

import (
	"fmt"

	"dedc/internal/circuit"
)

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..a(n-1),
// b0..b(n-1), cin; outputs s0..s(n-1), cout.
func RippleAdder(n int) *circuit.Circuit {
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	carry := b.PI("cin")
	for i := 0; i < n; i++ {
		var sum circuit.Line
		sum, carry = b.FullAdder(as[i], bs[i], carry)
		b.POName(sum, fmt.Sprintf("s%d", i))
	}
	b.POName(carry, "cout")
	return b.Done()
}

// CarrySelectAdder builds an n-bit carry-select adder with the given block
// size: each block is computed twice (cin=0 and cin=1) and muxed. More gates
// and more reconvergent fanout than the ripple adder — a useful stress shape
// for diagnosis.
func CarrySelectAdder(n, block int) *circuit.Circuit {
	if block < 1 {
		block = 4
	}
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	carry := b.PI("cin")
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		// Version with cin=0: a half adder in the first position.
		sum0 := make([]circuit.Line, hi-lo)
		s, c0 := b.HalfAdder(as[lo], bs[lo])
		sum0[0] = s
		for i := lo + 1; i < hi; i++ {
			sum0[i-lo], c0 = b.FullAdder(as[i], bs[i], c0)
		}
		// Version with cin=1: first position is a full adder with the
		// constant folded: sum = XNOR(a,b), carry = OR(a,b).
		sum1 := make([]circuit.Line, hi-lo)
		sum1[0] = b.Xnor2(as[lo], bs[lo])
		c1 := b.Or(as[lo], bs[lo])
		for i := lo + 1; i < hi; i++ {
			sum1[i-lo], c1 = b.FullAdder(as[i], bs[i], c1)
		}
		for i := lo; i < hi; i++ {
			b.POName(b.Mux(carry, sum0[i-lo], sum1[i-lo]), fmt.Sprintf("s%d", i))
		}
		carry = b.Mux(carry, c0, c1)
	}
	b.POName(carry, "cout")
	return b.Done()
}

// ArrayMultiplier builds an n×n unsigned array multiplier (c6288-like at
// n=16): partial products from AND gates, reduced by ripple rows of
// half/full adders built from NAND-based XORs. Outputs p0..p(2n-1).
func ArrayMultiplier(n int) *circuit.Circuit {
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	// pp[j] holds the pending addends of weight j (one spare column so the
	// reduction never writes out of range).
	pp := make([][]circuit.Line, 2*n+2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp[i+j] = append(pp[i+j], b.And(as[i], bs[j]))
		}
	}
	// Column-wise carry-save reduction followed by the final ripple pass:
	// a classic array-multiplier reduction that keeps the netlist regular.
	for w := 0; w <= 2*n; w++ {
		for len(pp[w]) > 2 {
			s, c := b.FullAdder(pp[w][0], pp[w][1], pp[w][2])
			pp[w] = append(pp[w][3:], s)
			pp[w+1] = append(pp[w+1], c)
		}
	}
	carry := circuit.NoLine
	for w := 0; w < len(pp); w++ {
		var s circuit.Line
		switch {
		case len(pp[w]) == 0:
			if carry == circuit.NoLine {
				continue
			}
			s, carry = carry, circuit.NoLine
		case len(pp[w]) == 1 && carry == circuit.NoLine:
			s = pp[w][0]
		case len(pp[w]) == 1:
			s, carry = b.HalfAdder(pp[w][0], carry)
		case carry == circuit.NoLine:
			s, carry = b.HalfAdder(pp[w][0], pp[w][1])
		default:
			s, carry = b.FullAdder(pp[w][0], pp[w][1], carry)
		}
		if w < 2*n {
			b.POName(s, fmt.Sprintf("p%d", w))
		} else {
			// The product fits in 2n bits, so any spill line is constant 0;
			// keeping it observable avoids dead logic in the netlist.
			b.POName(s, fmt.Sprintf("ovf%d", w-2*n))
		}
	}
	if carry != circuit.NoLine {
		b.POName(carry, "ovfc")
	}
	return b.Done()
}

// WallaceMultiplier builds an n×n unsigned multiplier with a Wallace-tree
// reduction: all partial products of a column are reduced in parallel
// rounds of (3,2) and (2,2) counters, with one final ripple pass. The same
// function as ArrayMultiplier through a very different structure — the
// classic equivalence-checking workload pair.
func WallaceMultiplier(n int) *circuit.Circuit {
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	cols := make([][]circuit.Line, 2*n+2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], b.And(as[i], bs[j]))
		}
	}
	// Wallace rounds: within each round, every column is reduced in
	// parallel — take triples into full adders and leftover pairs into half
	// adders, deferring carries to the next round.
	for !reduced(cols) {
		next := make([][]circuit.Line, len(cols))
		for w := range cols {
			items := cols[w]
			i := 0
			for ; i+2 < len(items); i += 3 {
				s, c := b.FullAdder(items[i], items[i+1], items[i+2])
				next[w] = append(next[w], s)
				next[w+1] = append(next[w+1], c)
			}
			if i+1 < len(items) {
				s, c := b.HalfAdder(items[i], items[i+1])
				next[w] = append(next[w], s)
				next[w+1] = append(next[w+1], c)
			} else if i < len(items) {
				next[w] = append(next[w], items[i])
			}
		}
		cols = next
	}
	// Final carry-propagate pass over the ≤2-deep columns.
	carry := circuit.NoLine
	for w := 0; w < len(cols); w++ {
		var s circuit.Line
		switch {
		case len(cols[w]) == 0:
			if carry == circuit.NoLine {
				continue
			}
			s, carry = carry, circuit.NoLine
		case len(cols[w]) == 1 && carry == circuit.NoLine:
			s = cols[w][0]
		case len(cols[w]) == 1:
			s, carry = b.HalfAdder(cols[w][0], carry)
		case carry == circuit.NoLine:
			s, carry = b.HalfAdder(cols[w][0], cols[w][1])
		default:
			s, carry = b.FullAdder(cols[w][0], cols[w][1], carry)
		}
		if w < 2*n {
			b.POName(s, fmt.Sprintf("p%d", w))
		} else {
			b.POName(s, fmt.Sprintf("ovf%d", w-2*n))
		}
	}
	if carry != circuit.NoLine {
		b.POName(carry, "ovfc")
	}
	return b.Done()
}

func reduced(cols [][]circuit.Line) bool {
	for _, c := range cols {
		if len(c) > 2 {
			return false
		}
	}
	return true
}

// ALU operation encodings for the Alu generator, selected by two control
// inputs op1,op0: 00=ADD, 01=AND, 10=OR, 11=XOR.
const (
	AluOpAdd = 0
	AluOpAnd = 1
	AluOpOr  = 2
	AluOpXor = 3
)

// Alu builds an n-bit four-function ALU (c880/c3540-like shapes): two data
// words, a carry-in, two op-select lines; outputs r0..r(n-1), carry-out and
// a zero flag. Result selection uses AND/OR mux trees, giving the heavy
// reconvergence typical of the ISCAS ALU circuits.
func Alu(n int) *circuit.Circuit {
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	cin := b.PI("cin")
	op0 := b.PI("op0")
	op1 := b.PI("op1")

	// One-hot op decode.
	nop0, nop1 := b.Not(op0), b.Not(op1)
	isAdd := b.And(nop1, nop0)
	isAnd := b.And(nop1, op0)
	isOr := b.And(op1, nop0)
	isXor := b.And(op1, op0)

	carry := cin
	sums := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		sums[i], carry = b.FullAdder(as[i], bs[i], carry)
	}
	results := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		andI := b.And(as[i], bs[i])
		orI := b.Or(as[i], bs[i])
		xorI := b.Xor2(as[i], bs[i])
		results[i] = b.Or(
			b.And(isAdd, sums[i]),
			b.And(isAnd, andI),
			b.And(isOr, orI),
			b.And(isXor, xorI),
		)
		b.POName(results[i], fmt.Sprintf("r%d", i))
	}
	b.POName(b.And(isAdd, carry), "cout")
	b.POName(b.Nor(results...), "zero")
	return b.Done()
}

// Comparator builds an n-bit magnitude comparator with outputs eq, lt, gt.
func Comparator(n int) *circuit.Circuit {
	b := NewB()
	as := make([]circuit.Line, n)
	bs := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		as[i] = b.PI(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		bs[i] = b.PI(fmt.Sprintf("b%d", i))
	}
	eqBits := make([]circuit.Line, n)
	for i := 0; i < n; i++ {
		eqBits[i] = b.Xnor2(as[i], bs[i])
	}
	// lt = OR over i of (a_i < b_i AND all higher bits equal).
	var ltTerms, gtTerms []circuit.Line
	for i := n - 1; i >= 0; i-- {
		higherEq := make([]circuit.Line, 0, n-i)
		for j := i + 1; j < n; j++ {
			higherEq = append(higherEq, eqBits[j])
		}
		ltBit := b.And(b.Not(as[i]), bs[i])
		gtBit := b.And(as[i], b.Not(bs[i]))
		if len(higherEq) > 0 {
			ltTerms = append(ltTerms, b.And(append([]circuit.Line{ltBit}, higherEq...)...))
			gtTerms = append(gtTerms, b.And(append([]circuit.Line{gtBit}, higherEq...)...))
		} else {
			ltTerms = append(ltTerms, ltBit)
			gtTerms = append(gtTerms, gtBit)
		}
	}
	b.POName(b.And(eqBits...), "eq")
	b.POName(b.Or(ltTerms...), "lt")
	b.POName(b.Or(gtTerms...), "gt")
	return b.Done()
}
