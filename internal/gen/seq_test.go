package gen

import (
	"testing"

	"dedc/internal/circuit"
	"dedc/internal/scan"
)

// stepSeq drives one clock cycle through the scan reference stepper.
func stepSeq(t *testing.T, c *circuit.Circuit, piVals []bool, state []bool) ([]bool, []bool) {
	t.Helper()
	cv, err := scan.Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	return cv.StepReference(piVals, state)
}

func TestCounterCounts(t *testing.T) {
	const n = 4
	c := Counter(n)
	cv, err := scan.Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	state := make([]bool, n)
	val := 0
	for cycle := 0; cycle < 25; cycle++ {
		en := cycle%3 != 0 // mixed enable pattern
		po, next := cv.StepReference([]bool{en}, state)
		// Outputs expose the current state plus terminal count.
		got := 0
		for i := 0; i < n; i++ {
			if po[i] {
				got |= 1 << i
			}
		}
		if got != val {
			t.Fatalf("cycle %d: state %d, want %d", cycle, got, val)
		}
		if po[n] != (val == (1<<n)-1) {
			t.Fatalf("cycle %d: terminal count wrong for state %d", cycle, val)
		}
		if en {
			val = (val + 1) % (1 << n)
		}
		state = next
	}
}

func TestCounterHoldsWithoutEnable(t *testing.T) {
	c := Counter(3)
	cv, err := scan.Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	state := []bool{true, false, true}
	_, next := cv.StepReference([]bool{false}, state)
	for i := range state {
		if next[i] != state[i] {
			t.Fatal("counter changed state with enable low")
		}
	}
}

func TestLFSRSequence(t *testing.T) {
	// 4-bit maximal LFSR with taps {0,1} (x^4 + x^3 + 1 style): from a
	// nonzero seed the state must cycle through 15 distinct values.
	c := LFSR(4, []int{0, 1})
	cv, err := scan.Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	state := []bool{true, false, false, false}
	seen := map[int]bool{}
	for cycle := 0; cycle < 15; cycle++ {
		v := 0
		for i, b := range state {
			if b {
				v |= 1 << i
			}
		}
		if seen[v] {
			t.Fatalf("state %d repeated at cycle %d (period < 15)", v, cycle)
		}
		seen[v] = true
		_, state = cv.StepReference([]bool{true}, state)
	}
	if len(seen) != 15 {
		t.Fatalf("visited %d states, want 15", len(seen))
	}
}

func TestLFSRHoldsWithoutEnable(t *testing.T) {
	c := LFSR(4, []int{0, 1})
	state := []bool{true, true, false, true}
	_, next := stepSeq(t, c, []bool{false}, state)
	for i := range state {
		if next[i] != state[i] {
			t.Fatal("LFSR shifted with enable low")
		}
	}
}

func TestLFSRUnrollMatchesStepper(t *testing.T) {
	c := LFSR(4, []int{0, 1})
	u, err := scan.Unroll(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	if u.Comb.IsSequential() {
		t.Fatal("unrolled LFSR still sequential")
	}
	// Functional check is covered structurally by the generic unroll tests;
	// here just confirm interface shape: 5 frames × 1 PI + 4 init state.
	if len(u.Comb.PIs) != 9 {
		t.Fatalf("PIs = %d, want 9", len(u.Comb.PIs))
	}
}

func TestSeqGeneratorsPanicOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { LFSR(1, []int{0}) },
		func() { LFSR(4, []int{9}) },
		func() { Counter(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on invalid arguments")
				}
			}()
			f()
		}()
	}
}
