// Package experiment implements the paper's evaluation harness: the
// stuck-at fault study of Table 1, the design-error study of Table 2, the
// fault-masking observation of §4.1 and the correction-rank audit of §3.2.
// The same runners back the root-level benchmarks, the harness tests and
// cmd/tables.
package experiment

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dedc/internal/circuit"
	"dedc/internal/diagnose"
	"dedc/internal/errmodel"
	"dedc/internal/fault"
	"dedc/internal/gen"
	"dedc/internal/opt"
	"dedc/internal/scan"
	"dedc/internal/telemetry"
	"dedc/internal/tpg"
)

// Config controls an experiment run.
type Config struct {
	Trials  int   // experiments per cell (paper: 10)
	Vectors int   // random vectors in V (paper: 6,000–10,000)
	Seed    int64 // base seed; trial t uses Seed + t
	// Deterministic adds a PODEM pass to the vector set.
	Deterministic bool
	// MaxNodes caps each diagnosis run's tree (0 = diagnose default).
	MaxNodes int
	// Workers sets each diagnosis run's evaluation-worker count
	// (0 = GOMAXPROCS, 1 = sequential; results are identical for any value).
	Workers int
	// RunBudget bounds each diagnosis run's wall-clock time (default 30s).
	RunBudget time.Duration
	// Ctx, when non-nil, flows into every vector-generation and diagnosis
	// run: cancellation stops the harness between (and inside) runs, and a
	// telemetry tracer carried by the context journals each run.
	Ctx context.Context
}

// ctx returns the configured context or Background.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Defaults fills unset fields.
func (c Config) defaults() Config {
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Vectors == 0 {
		c.Vectors = 2048
	}
	if c.RunBudget == 0 {
		c.RunBudget = 30 * time.Second
	}
	return c
}

// Prepare builds the combinational, optionally area-optimized view of a
// benchmark plus its vector set. Sequential circuits are scan-converted
// first (the paper's full-scan treatment). When cfg.Ctx carries a tracer the
// whole build is wrapped in a "prepare" span, so journals and the
// span.prepare.dur_ns histogram separate setup cost from diagnosis cost.
func Prepare(bm gen.Benchmark, optimize bool, cfg Config) (_ *circuit.Circuit, _ *tpg.Result, err error) {
	cfg = cfg.defaults()
	ctx, sp := telemetry.FromContext(cfg.ctx()).StartSpan(cfg.ctx(), "prepare",
		telemetry.String("circuit", bm.Name))
	cfg.Ctx = ctx
	defer func() { sp.End(telemetry.Bool("ok", err == nil)) }()
	c := bm.Build()
	if bm.Sequential {
		cv, err := scan.Convert(c)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", bm.Name, err)
		}
		c = cv.Comb
	}
	if optimize {
		oc, err := opt.Optimize(c)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", bm.Name, err)
		}
		c = oc
	}
	vecs := tpg.BuildVectorsContext(cfg.ctx(), c, tpg.Options{
		Random:        cfg.Vectors,
		Seed:          cfg.Seed,
		Deterministic: cfg.Deterministic,
	})
	return c, vecs, nil
}

// Table1Cell aggregates one (circuit, fault count) cell of Table 1.
type Table1Cell struct {
	Faults    int
	Runs      int
	AvgSites  float64       // avg distinct fault sites over all tuples
	AvgTuples float64       // avg equivalent minimal tuples
	TimeTuple time.Duration // avg time to discover one tuple
	Masked    int           // runs explained by tuples smaller than injected
	Failed    int           // runs with no explanation found within bounds
}

// Table1Row is one circuit row of Table 1.
type Table1Row struct {
	Name  string
	Lines int
	Cells []Table1Cell
}

// RunTable1Row reproduces one row of Table 1: the circuit is optimized for
// area, corrupted with k random stuck-at faults (k over faultCounts, Trials
// times each), and diagnosed exhaustively; all minimal equivalent fault
// tuples are collected.
func RunTable1Row(bm gen.Benchmark, faultCounts []int, cfg Config) (Table1Row, error) {
	cfg = cfg.defaults()
	c, vecs, err := Prepare(bm, true, cfg)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{Name: bm.Name, Lines: c.LineCount()}
	for _, k := range faultCounts {
		cell := Table1Cell{Faults: k}
		for t := 0; t < cfg.Trials; t++ {
			seed := cfg.Seed + int64(t)*7919 + int64(k)*104729
			fs := randomObservableFaults(c, k, vecs.PI, vecs.N, seed)
			if fs == nil {
				cell.Failed++
				continue
			}
			device := fault.Inject(c, fs...)
			devOut := diagnose.DeviceOutputs(device, vecs.PI, vecs.N)
			start := time.Now()
			res, derr := diagnose.DiagnoseStuckAtContext(cfg.ctx(), c, devOut, vecs.PI, vecs.N, diagnose.Options{
				MaxErrors:  k,
				MaxNodes:   cfg.MaxNodes,
				TimeBudget: cfg.RunBudget,
				Workers:    cfg.Workers,
			})
			if derr != nil {
				return Table1Row{}, derr
			}
			elapsed := time.Since(start)
			cell.Runs++
			if len(res.Tuples) == 0 {
				cell.Failed++
				continue
			}
			cell.AvgTuples += float64(len(res.Tuples))
			cell.AvgSites += float64(fault.DistinctSites(res.Tuples))
			cell.TimeTuple += elapsed / time.Duration(len(res.Tuples))
			if len(res.Tuples[0]) < k {
				cell.Masked++
			}
		}
		if n := cell.Runs - cell.Failed; n > 0 {
			cell.AvgTuples /= float64(n)
			cell.AvgSites /= float64(n)
			cell.TimeTuple /= time.Duration(n)
		}
		row.Cells = append(row.Cells, cell)
	}
	return row, nil
}

// randomObservableFaults draws k distinct-site random faults whose joint
// injection changes some output on the vectors.
func randomObservableFaults(c *circuit.Circuit, k int, pi [][]uint64, n int, seed int64) []fault.Fault {
	rng := rand.New(rand.NewSource(seed))
	sites := fault.Sites(c)
	goodOut := diagnose.DeviceOutputs(c, pi, n)
	for tries := 0; tries < 60; tries++ {
		seen := map[fault.Site]bool{}
		var fs []fault.Fault
		for len(fs) < k {
			s := sites[rng.Intn(len(sites))]
			if seen[s] {
				continue
			}
			seen[s] = true
			fs = append(fs, fault.Fault{Site: s, Value: rng.Intn(2) == 1})
		}
		device := fault.Inject(c, fs...)
		if !diagnose.Verify(device, goodOut, pi, n) {
			return fs
		}
	}
	return nil
}

// Table2Cell aggregates one (circuit, error count) cell of Table 2.
type Table2Cell struct {
	Errors   int
	Runs     int
	DiagTime time.Duration // avg diagnosis time per algorithm execution
	CorrTime time.Duration // avg correction time per algorithm execution
	Nodes    float64       // avg decision-tree nodes (algorithm executions)
	Total    time.Duration // avg total time to the first valid correction set
	Failed   int
}

// Table2Row is one circuit row of Table 2.
type Table2Row struct {
	Name  string
	Lines int
	Cells []Table2Cell
}

// RunTable2Row reproduces one row of Table 2: the unoptimized (redundant)
// circuit is corrupted with k observable design errors drawn from the
// Campenhout distribution and rectified in first-solution mode.
func RunTable2Row(bm gen.Benchmark, errorCounts []int, cfg Config) (Table2Row, error) {
	cfg = cfg.defaults()
	c, vecs, err := Prepare(bm, false, cfg)
	if err != nil {
		return Table2Row{}, err
	}
	specOut := diagnose.DeviceOutputs(c, vecs.PI, vecs.N)
	row := Table2Row{Name: bm.Name, Lines: c.LineCount()}
	for _, k := range errorCounts {
		cell := Table2Cell{Errors: k}
		for t := 0; t < cfg.Trials; t++ {
			seed := cfg.Seed + int64(t)*6151 + int64(k)*24593
			bad, _, err := errmodel.Inject(c, k, errmodel.InjectOptions{
				Seed:          seed,
				CheckPatterns: vecs.PI,
				N:             vecs.N,
			})
			if err != nil {
				cell.Failed++
				continue
			}
			start := time.Now()
			rep, err := diagnose.RepairContext(cfg.ctx(), bad, specOut, vecs.PI, vecs.N, diagnose.Options{
				MaxErrors:  k + 1,
				MaxNodes:   cfg.MaxNodes,
				TimeBudget: cfg.RunBudget,
				Workers:    cfg.Workers,
			})
			elapsed := time.Since(start)
			cell.Runs++
			if err != nil {
				cell.Failed++
				continue
			}
			nodes := float64(rep.Stats.Nodes)
			cell.Nodes += nodes
			cell.DiagTime += time.Duration(float64(rep.Stats.DiagTime) / nodes)
			cell.CorrTime += time.Duration(float64(rep.Stats.CorrTime) / nodes)
			cell.Total += elapsed
		}
		if n := cell.Runs - cell.Failed; n > 0 {
			cell.Nodes /= float64(n)
			cell.DiagTime /= time.Duration(n)
			cell.CorrTime /= time.Duration(n)
			cell.Total /= time.Duration(n)
		}
		row.Cells = append(row.Cells, cell)
	}
	return row, nil
}

// FaultMaskingRate reproduces the §4.1 observation: the fraction of k-fault
// injections into a (scan-converted) circuit that are fully explained by a
// smaller tuple.
func FaultMaskingRate(bm gen.Benchmark, k int, cfg Config) (rate float64, runs int, err error) {
	cfg = cfg.defaults()
	c, vecs, err := Prepare(bm, true, cfg)
	if err != nil {
		return 0, 0, err
	}
	masked := 0
	for t := 0; t < cfg.Trials; t++ {
		seed := cfg.Seed + int64(t)*31 + 7
		fs := randomObservableFaults(c, k, vecs.PI, vecs.N, seed)
		if fs == nil {
			continue
		}
		device := fault.Inject(c, fs...)
		devOut := diagnose.DeviceOutputs(device, vecs.PI, vecs.N)
		res, derr := diagnose.DiagnoseStuckAtContext(cfg.ctx(), c, devOut, vecs.PI, vecs.N, diagnose.Options{
			MaxErrors:  k,
			MaxNodes:   cfg.MaxNodes,
			TimeBudget: cfg.RunBudget,
			Workers:    cfg.Workers,
		})
		if derr != nil {
			return 0, 0, derr
		}
		if len(res.Tuples) == 0 {
			continue
		}
		runs++
		if len(res.Tuples[0]) < k {
			masked++
		}
	}
	if runs == 0 {
		return 0, 0, nil
	}
	return float64(masked) / float64(runs), runs, nil
}

// WriteTable1 renders rows in the layout of the paper's Table 1, including
// its bottom "Average" row.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-8s %7s", "ckt", "lines")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(w, " |%3dflt: %7s %7s %9s", c.Faults, "#sites", "#tuples", "t/tuple")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d", r.Name, r.Lines)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " |        %7.1f %7.1f %9s", c.AvgSites, c.AvgTuples, fmtDur(c.TimeTuple))
		}
		fmt.Fprintln(w)
	}
	if len(rows) < 2 {
		return
	}
	fmt.Fprintf(w, "%-8s %7s", "Average", "")
	for ci := range rows[0].Cells {
		var sites, tuples float64
		var tt time.Duration
		n := 0
		for _, r := range rows {
			if ci < len(r.Cells) {
				sites += r.Cells[ci].AvgSites
				tuples += r.Cells[ci].AvgTuples
				tt += r.Cells[ci].TimeTuple
				n++
			}
		}
		fmt.Fprintf(w, " |        %7.1f %7.1f %9s",
			sites/float64(n), tuples/float64(n), fmtDur(tt/time.Duration(n)))
	}
	fmt.Fprintln(w)
}

// WriteTable2 renders rows in the layout of the paper's Table 2, plus a
// solved-fraction column the paper does not need (it reports no failures).
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-8s %7s", "ckt", "lines")
	for _, c := range rows[0].Cells {
		fmt.Fprintf(w, " |%derr: %9s %9s %7s %9s %6s", c.Errors, "diag", "corr", "nodes", "total", "solved")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7d", r.Name, r.Lines)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " |      %9s %9s %7.1f %9s %3d/%-3d", fmtDur(c.DiagTime), fmtDur(c.CorrTime), c.Nodes, fmtDur(c.Total), c.Runs-c.Failed, c.Runs)
		}
		fmt.Fprintln(w)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
