package experiment

import (
	"strings"
	"testing"

	"dedc/internal/circuit"
	"dedc/internal/gen"
)

func fastCfg() Config {
	return Config{Trials: 2, Vectors: 512, Seed: 1}
}

func TestPrepareCombinational(t *testing.T) {
	bm, _ := gen.ByName("alu4")
	c, vecs, err := Prepare(bm, true, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.IsSequential() {
		t.Fatal("combinational prep produced sequential circuit")
	}
	if vecs.N < 512 {
		t.Fatalf("vector count %d", vecs.N)
	}
}

func seqSmall() *circuit.Circuit {
	return gen.RandomSequential(gen.RandomOptions{PIs: 8, Gates: 80, Seed: 42}, 6)
}

func TestRunTable1RowSmall(t *testing.T) {
	bm, _ := gen.ByName("alu4")
	row, err := RunTable1Row(bm, []int{1, 2}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if row.Lines == 0 {
		t.Fatal("line count missing")
	}
	if len(row.Cells) != 2 {
		t.Fatalf("cells = %d", len(row.Cells))
	}
	for _, c := range row.Cells {
		if c.Runs == 0 {
			t.Fatalf("no runs for %d faults", c.Faults)
		}
		if c.Failed == c.Runs {
			t.Fatalf("every %d-fault run failed", c.Faults)
		}
		if c.AvgTuples < 1 {
			t.Fatalf("avg tuples %.2f < 1", c.AvgTuples)
		}
		if c.AvgSites < c.AvgTuples && c.Faults == 1 {
			t.Fatalf("single-fault sites (%.1f) below tuples (%.1f)", c.AvgSites, c.AvgTuples)
		}
	}
}

func TestRunTable2RowSmall(t *testing.T) {
	bm, _ := gen.ByName("alu4")
	row, err := RunTable2Row(bm, []int{2}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	cell := row.Cells[0]
	if cell.Runs == 0 {
		t.Fatal("no runs")
	}
	if cell.Failed == cell.Runs {
		t.Fatal("all repairs failed")
	}
	if cell.Nodes < 1 {
		t.Fatalf("avg nodes %.1f", cell.Nodes)
	}
	if cell.Total == 0 {
		t.Fatal("no total time recorded")
	}
}

func TestFaultMaskingRate(t *testing.T) {
	bm, _ := gen.ByName("rnd300")
	rate, runs, err := FaultMaskingRate(bm, 3, Config{Trials: 3, Vectors: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Skip("no explainable runs")
	}
	if rate < 0 || rate > 1 {
		t.Fatalf("rate %v out of range", rate)
	}
}

func TestWriteTables(t *testing.T) {
	bm, _ := gen.ByName("mult4")
	row1, err := RunTable1Row(bm, []int{1}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTable1(&sb, []Table1Row{row1})
	if !strings.Contains(sb.String(), "mult4") || !strings.Contains(sb.String(), "#tuples") {
		t.Fatalf("table 1 rendering wrong:\n%s", sb.String())
	}
	row2, err := RunTable2Row(bm, []int{1}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	WriteTable2(&sb, []Table2Row{row2})
	if !strings.Contains(sb.String(), "nodes") {
		t.Fatalf("table 2 rendering wrong:\n%s", sb.String())
	}
}

func TestSequentialBenchmarkPrepares(t *testing.T) {
	bm := gen.Benchmark{Name: "seqsmall", Sequential: true, Build: seqSmall}
	c, _, err := Prepare(bm, true, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if c.IsSequential() {
		t.Fatal("scan conversion did not happen")
	}
}
