package experiment

import (
	"os"
	"testing"

	"dedc/internal/gen"
)

// TestMaskingVectorSensitivity probes how the measured fault-masking rate
// depends on |V| (run manually: DEDC_SCALE=1).
func TestMaskingVectorSensitivity(t *testing.T) {
	if os.Getenv("DEDC_SCALE") == "" {
		t.Skip("set DEDC_SCALE=1")
	}
	bm, _ := gen.ByName("s1196*")
	for _, n := range []int{1024, 4096, 8192} {
		rate, runs, err := FaultMaskingRate(bm, 4, Config{Trials: 6, Vectors: n, Seed: 2, Deterministic: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("vectors=%d: masking %.0f%% of %d runs", n, 100*rate, runs)
	}
}
