// Package cache is the hot-path reuse layer: a content-addressed,
// byte-budgeted LRU store keyed by canonical netlist fingerprints (see
// Fingerprint), holding parsed circuits and ATPG vector-set results so fleet
// jobs that share a circuit skip parse+ATPG entirely. Values are isolated on
// the way out (circuits are cloned, vector sets deep-copied), so a cache hit
// is observationally identical to recomputing — the determinism contract the
// tests pin down is "cached-vs-fresh results are bit-identical".
package cache

import (
	"container/list"
	"sync"

	"dedc/internal/telemetry"
)

// Stats is a point-in-time summary of a store's traffic and occupancy.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int64 `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// HitRate is hits/(hits+misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

type entry struct {
	key  string
	val  any
	size int64
}

// Store is a concurrency-safe LRU keyed by string, bounded by a byte budget
// rather than an entry count (cached circuits and vector sets vary by orders
// of magnitude in size). A nil Store, or one built with maxBytes <= 0, is
// disabled: Get always misses without counting, Put is a no-op — the "0
// disables" contract of dedcd's -cache-bytes flag.
type Store struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List // front = most recently used; values are *entry
	byKey map[string]*list.Element

	hits, misses, evictions int64

	// Optional registry mirrors, wired by Instrument; nil no-ops.
	cHits, cMisses, cEvictions *telemetry.Counter
	gBytes, gEntries           *telemetry.Gauge
}

// New returns a store bounded to maxBytes of cached-value size (as reported
// by callers at Put time). maxBytes <= 0 returns a disabled store.
func New(maxBytes int64) *Store {
	if maxBytes <= 0 {
		return &Store{}
	}
	return &Store{max: maxBytes, ll: list.New(), byKey: map[string]*list.Element{}}
}

// Enabled reports whether the store holds entries at all.
func (s *Store) Enabled() bool { return s != nil && s.max > 0 }

// Instrument mirrors the store's traffic onto reg as cache.hits /
// cache.misses / cache.evictions counters and cache.bytes / cache.entries
// gauges, all with # HELP text for /metrics. A nil registry detaches.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cHits = reg.Counter("cache.hits", "Content-addressed cache lookups served from memory.")
	s.cMisses = reg.Counter("cache.misses", "Content-addressed cache lookups that fell through to a recompute.")
	s.cEvictions = reg.Counter("cache.evictions", "Cache entries evicted to stay under the byte budget.")
	s.gBytes = reg.Gauge("cache.bytes", "Bytes of cached values currently resident.")
	s.gEntries = reg.Gauge("cache.entries", "Cache entries currently resident.")
}

// Get returns the cached value for key. Callers must treat the returned
// value as shared and immutable; the typed wrappers in Pipeline copy on the
// way out.
func (s *Store) Get(key string) (any, bool) {
	if !s.Enabled() {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		s.misses++
		s.cMisses.Inc()
		return nil, false
	}
	s.hits++
	s.cHits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key at the given size, evicting least-recently-used
// entries until the budget holds. A value larger than the whole budget is
// not stored. Re-putting an existing key replaces its value and size.
func (s *Store) Put(key string, val any, size int64) {
	if !s.Enabled() || size > s.max {
		return
	}
	if size < 0 {
		size = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.val, e.size = val, size
		s.ll.MoveToFront(el)
	} else {
		s.byKey[key] = s.ll.PushFront(&entry{key: key, val: val, size: size})
		s.bytes += size
	}
	for s.bytes > s.max {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.byKey, e.key)
		s.bytes -= e.size
		s.evictions++
		s.cEvictions.Inc()
	}
	s.gBytes.Set(s.bytes)
	s.gEntries.Set(int64(s.ll.Len()))
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	if !s.Enabled() {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the resident value size.
func (s *Store) Bytes() int64 {
	if !s.Enabled() {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Snapshot returns the store's traffic and occupancy stats.
func (s *Store) Snapshot() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions}
	if s.ll != nil {
		st.Entries = int64(s.ll.Len())
		st.Bytes = s.bytes
	}
	return st
}
