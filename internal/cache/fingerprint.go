package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"dedc/internal/circuit"
)

// fpVersion tags the fingerprint encoding; bump it whenever the canonical
// byte layout below changes so stale persisted keys can never collide with
// new ones.
const fpVersion = "dedc-fp-v1\x00"

// Fingerprint computes a content address for a circuit's *structure*: a
// stable hash over the gates in topological order, with every line renamed
// to its topological rank. Two circuits that differ only in gate numbering
// or line names fingerprint identically; any change to a gate type, a fanin
// edge, the PI order or the PO list changes the hash. Names are deliberately
// excluded — every cached artifact keyed by a fingerprint (ATPG vector sets,
// equivalence-session encodings) depends on structure alone.
//
// The empty string is returned for circuits without a valid topological
// order (combinational cycles); callers treat that as "not cacheable".
// Fingerprint touches the circuit's lazily derived topo order, so it must
// not race with writers — call it from the goroutine that owns the circuit.
func Fingerprint(c *circuit.Circuit) string {
	topo, err := c.TopoChecked()
	if err != nil {
		return ""
	}
	rank := make([]int32, c.NumLines())
	for i, l := range topo {
		rank[l] = int32(i)
	}
	h := sha256.New()
	h.Write([]byte(fpVersion))
	var buf [binary.MaxVarintLen64]byte
	writeInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	writeInt(int64(c.NumLines()))
	writeInt(int64(len(c.PIs)))
	for _, pi := range c.PIs {
		writeInt(int64(rank[pi]))
	}
	writeInt(int64(len(c.POs)))
	for _, po := range c.POs {
		writeInt(int64(rank[po]))
	}
	for _, l := range topo {
		g := &c.Gates[l]
		writeInt(int64(g.Type))
		writeInt(int64(len(g.Fanin)))
		for _, f := range g.Fanin {
			writeInt(int64(rank[f]))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
