package cache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"dedc/internal/bench"
	"dedc/internal/circuit"
	"dedc/internal/telemetry"
	"dedc/internal/tpg"
)

// Pipeline is the typed front of the store for the two artifacts the service
// recomputes most: parsed .bench netlists (keyed by the text's content hash)
// and ATPG vector sets (keyed by the circuit's structural fingerprint plus
// the generation parameters). Everything returned is a private copy — the
// masters inside the store are never handed out, so concurrent jobs sharing
// a circuit cannot race on the Circuit's lazily derived data or mutate each
// other's vector rows.
type Pipeline struct {
	store *Store
}

// NewPipeline returns a pipeline over a store of the given byte budget;
// maxBytes <= 0 disables caching (every call recomputes). A nil *Pipeline is
// likewise a valid pass-through.
func NewPipeline(maxBytes int64) *Pipeline {
	return &Pipeline{store: New(maxBytes)}
}

// Instrument wires the underlying store's counters to reg (see
// Store.Instrument).
func (p *Pipeline) Instrument(reg *telemetry.Registry) {
	if p != nil {
		p.store.Instrument(reg)
	}
}

// Snapshot reports the underlying store's stats; zero on a nil pipeline.
func (p *Pipeline) Snapshot() Stats {
	if p == nil {
		return Stats{}
	}
	return p.store.Snapshot()
}

// Enabled reports whether the pipeline actually caches.
func (p *Pipeline) Enabled() bool { return p != nil && p.store.Enabled() }

// ParseBench parses .bench text through the cache: the first caller pays
// bench.Read, later callers with byte-identical text get a clone of the
// parsed master. Parse errors are returned without being cached.
func (p *Pipeline) ParseBench(text string) (*circuit.Circuit, error) {
	if !p.Enabled() {
		return bench.Read(strings.NewReader(text))
	}
	sum := sha256.Sum256([]byte(text))
	key := "bench:" + hex.EncodeToString(sum[:])
	if v, ok := p.store.Get(key); ok {
		return v.(*circuit.Circuit).Clone(), nil
	}
	c, err := bench.Read(strings.NewReader(text))
	if err != nil {
		return nil, err
	}
	p.store.Put(key, c, circuitBytes(c))
	return c.Clone(), nil
}

// Vectors builds (or replays) the ATPG vector set for c under opt. The cache
// key is the circuit's structural fingerprint plus every option that shapes
// the result — opt.Workers is deliberately excluded, because the parallel
// PODEM pass is bit-identical at any worker count (see tpg.Options.Workers).
// Cancelled (partial) results are returned but never cached, and circuits
// without a fingerprint (combinational cycles) bypass the cache entirely.
func (p *Pipeline) Vectors(ctx context.Context, c *circuit.Circuit, opt tpg.Options) *tpg.Result {
	if !p.Enabled() {
		return tpg.BuildVectorsContext(ctx, c, opt)
	}
	fp := Fingerprint(c)
	if fp == "" {
		return tpg.BuildVectorsContext(ctx, c, opt)
	}
	key := fmt.Sprintf("vec:%s:r%d:s%d:d%t:b%d", fp, opt.Random, opt.Seed, opt.Deterministic, opt.BacktrackLimit)
	if v, ok := p.store.Get(key); ok {
		return copyResult(v.(*tpg.Result))
	}
	res := tpg.BuildVectorsContext(ctx, c, opt)
	if res.Cancelled {
		return res
	}
	p.store.Put(key, res, resultBytes(res))
	return copyResult(res)
}

// copyResult deep-copies a vector-set result so the cached master's rows are
// never aliased by a caller.
func copyResult(r *tpg.Result) *tpg.Result {
	out := *r
	out.PI = make([][]uint64, len(r.PI))
	for i, row := range r.PI {
		out.PI[i] = append([]uint64(nil), row...)
	}
	return &out
}

// circuitBytes estimates a parsed circuit's resident size for the byte
// budget: slice headers and fanin/name payloads dominate.
func circuitBytes(c *circuit.Circuit) int64 {
	n := int64(64) // struct + PI/PO slice headers
	n += int64(len(c.PIs)+len(c.POs)) * 4
	for i := range c.Gates {
		g := &c.Gates[i]
		n += 48 + int64(len(g.Fanin))*4 + int64(len(g.Name))
	}
	return n
}

// resultBytes estimates a vector set's resident size: the packed PI matrix
// dominates everything else.
func resultBytes(r *tpg.Result) int64 {
	n := int64(96)
	for _, row := range r.PI {
		n += 24 + int64(len(row))*8
	}
	return n
}
