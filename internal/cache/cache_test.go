package cache

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dedc/internal/bench"
	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/telemetry"
	"dedc/internal/tpg"
)

// TestFingerprintStable: the fingerprint is a pure function of circuit
// structure — identical across calls, across clones, and across line names.
func TestFingerprintStable(t *testing.T) {
	c := gen.Alu(4)
	fp := Fingerprint(c)
	if fp == "" {
		t.Fatal("acyclic circuit has no fingerprint")
	}
	if got := Fingerprint(c); got != fp {
		t.Errorf("fingerprint not stable across calls: %s vs %s", got, fp)
	}
	if got := Fingerprint(c.Clone()); got != fp {
		t.Errorf("clone fingerprint differs: %s vs %s", got, fp)
	}

	// Same structure, different names: two hand-built AND gates.
	mk := func(an, bn string) *circuit.Circuit {
		c := circuit.New(4)
		a := c.AddPI(an)
		b := c.AddPI(bn)
		c.MarkPO(c.AddGate(circuit.And, a, b))
		return c
	}
	if Fingerprint(mk("a", "b")) != Fingerprint(mk("x", "long_signal_name")) {
		t.Error("fingerprint depends on line names")
	}
}

// TestFingerprintSensitivity: structurally different circuits — different
// gate type, different wiring, different PO choice — hash apart.
func TestFingerprintSensitivity(t *testing.T) {
	build := func(typ circuit.GateType, po int) *circuit.Circuit {
		c := circuit.New(8)
		a := c.AddPI("a")
		b := c.AddPI("b")
		g1 := c.AddGate(typ, a, b)
		g2 := c.AddGate(circuit.Or, g1, b)
		if po == 0 {
			c.MarkPO(g1)
		} else {
			c.MarkPO(g2)
		}
		return c
	}
	seen := map[string]string{}
	for name, c := range map[string]*circuit.Circuit{
		"and-g1":  build(circuit.And, 0),
		"nand-g1": build(circuit.Nand, 0),
		"and-g2":  build(circuit.And, 1),
	} {
		fp := Fingerprint(c)
		if fp == "" {
			t.Fatalf("%s: empty fingerprint", name)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share a fingerprint", name, prev)
		}
		seen[fp] = name
	}
}

// TestFingerprintCyclic: a combinational cycle has no topological order and
// therefore no fingerprint — such circuits bypass the cache.
func TestFingerprintCyclic(t *testing.T) {
	c := circuit.New(4)
	a := c.AddPI("a")
	g := c.AddGate(circuit.And, a, a)
	c.Gates[g].Fanin[1] = g // self-loop
	c.MarkPO(g)
	if fp := Fingerprint(c); fp != "" {
		t.Errorf("cyclic circuit fingerprinted: %s", fp)
	}
}

// TestStoreLRU pins the store's accounting: hits move entries to the front,
// eviction walks from the back, re-puts replace in place, and oversized
// values are rejected outright.
func TestStoreLRU(t *testing.T) {
	s := New(100)
	s.Put("a", "A", 40)
	s.Put("b", "B", 40)
	if _, ok := s.Get("a"); !ok { // refresh a: b is now LRU
		t.Fatal("a missing")
	}
	s.Put("c", "C", 40) // 120 > 100: evicts b
	if _, ok := s.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("recently-used a evicted instead of b")
	}
	s.Put("a", "A2", 10) // replace: size shrinks 40 -> 10
	if v, _ := s.Get("a"); v != "A2" {
		t.Errorf("re-put did not replace: %v", v)
	}
	s.Put("huge", "X", 101) // larger than the whole budget
	if _, ok := s.Get("huge"); ok {
		t.Error("oversized value stored")
	}
	st := s.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 50 {
		t.Errorf("stats: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 || st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("traffic stats: %+v rate %f", st, st.HitRate())
	}
}

// TestStoreDisabled: maxBytes <= 0 (and nil) stores neither hold entries nor
// count traffic — the -cache-bytes 0 contract.
func TestStoreDisabled(t *testing.T) {
	for name, s := range map[string]*Store{"zero": New(0), "nil": nil} {
		s.Put("k", "v", 1)
		if _, ok := s.Get("k"); ok {
			t.Errorf("%s: disabled store returned a value", name)
		}
		if st := s.Snapshot(); st != (Stats{}) {
			t.Errorf("%s: disabled store counted traffic: %+v", name, st)
		}
	}
}

// TestStoreInstrument: the registry mirrors agree with the store's own
// counters, and HELP text is attached.
func TestStoreInstrument(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(50)
	s.Instrument(reg)
	s.Put("a", 1, 30)
	s.Put("b", 2, 30) // evicts a
	s.Get("b")
	s.Get("a")
	st := s.Snapshot()
	if got := reg.Counter("cache.hits").Value(); got != st.Hits {
		t.Errorf("cache.hits = %d, store says %d", got, st.Hits)
	}
	if got := reg.Counter("cache.misses").Value(); got != st.Misses {
		t.Errorf("cache.misses = %d, store says %d", got, st.Misses)
	}
	if got := reg.Counter("cache.evictions").Value(); got != st.Evictions {
		t.Errorf("cache.evictions = %d, store says %d", got, st.Evictions)
	}
	if got := reg.Gauge("cache.bytes").Value(); got != st.Bytes {
		t.Errorf("cache.bytes = %d, store says %d", got, st.Bytes)
	}
}

// TestParseBenchDeterminism: a cached parse is observationally identical to a
// fresh one — same netlist text back out — and the second lookup is a hit.
func TestParseBenchDeterminism(t *testing.T) {
	text, err := bench.WriteString(gen.Alu(4))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(1 << 20)
	c1, err := p.ParseBench(text)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.ParseBench(text)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Snapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hit/miss after two parses: %+v", st)
	}
	t1, _ := bench.WriteString(c1)
	t2, _ := bench.WriteString(c2)
	if t1 != t2 || t1 != text {
		t.Error("cached parse not identical to fresh parse")
	}
	// The clones are isolated: mutating one must not leak into the next hit.
	c2.Gates[c2.PIs[0]].Name = "mutated"
	c3, _ := p.ParseBench(text)
	if c3.Gates[c3.PIs[0]].Name == "mutated" {
		t.Error("cache handed out an aliased circuit")
	}
}

// TestVectorsCachedVsFresh is the tentpole determinism contract: the vector
// set coming off a cache hit is bit-identical to a fresh ATPG run — same PI
// rows, same counts, same coverage.
func TestVectorsCachedVsFresh(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := gen.Random(gen.RandomOptions{PIs: 8, Gates: 60, Seed: seed})
		opt := tpg.Options{Random: 64, Seed: seed, Deterministic: true}
		fresh := tpg.BuildVectors(c, opt)

		p := NewPipeline(1 << 20)
		first := p.Vectors(context.Background(), c, opt)
		second := p.Vectors(context.Background(), c, opt)
		if st := p.Snapshot(); st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("seed %d: hit/miss: %+v", seed, st)
		}
		for name, got := range map[string]*tpg.Result{"miss": first, "hit": second} {
			if !reflect.DeepEqual(got, fresh) {
				t.Errorf("seed %d: %s result differs from fresh run:\n got %+v\nwant %+v",
					seed, name, got, fresh)
			}
		}
		// Isolation: scribbling on a returned row must not poison the cache.
		second.PI[0][0] ^= 0xdeadbeef
		third := p.Vectors(context.Background(), c, opt)
		if !reflect.DeepEqual(third, fresh) {
			t.Errorf("seed %d: cache master aliased by a returned result", seed)
		}
	}
}

// TestVectorsCancelledNotCached: a partial (cancelled) ATPG result is passed
// through but never stored, so a later caller gets the full set.
func TestVectorsCancelledNotCached(t *testing.T) {
	c := gen.Random(gen.RandomOptions{PIs: 8, Gates: 60, Seed: 7})
	opt := tpg.Options{Random: 64, Seed: 7, Deterministic: true}
	p := NewPipeline(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := p.Vectors(ctx, c, opt)
	if !res.Cancelled {
		t.Skip("cancelled run completed anyway (no undetected faults)")
	}
	full := p.Vectors(context.Background(), c, opt)
	if full.Cancelled {
		t.Error("full run reported cancelled")
	}
	if st := p.Snapshot(); st.Hits != 0 {
		t.Errorf("partial result was served from cache: %+v", st)
	}
}

// TestStoreConcurrentHammer drives Get/Put/Snapshot from many goroutines
// (meaningful under -race) and then checks the accounting still balances.
func TestStoreConcurrentHammer(t *testing.T) {
	s := New(1 << 12)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if _, ok := s.Get(key); !ok {
					s.Put(key, i, int64(64+i%128))
				}
				if i%50 == 0 {
					s.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Bytes > 1<<12 {
		t.Errorf("byte budget exceeded: %+v", st)
	}
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("lookups leaked: %+v", st)
	}
}

// TestPipelineConcurrentVectors: concurrent cache users on the same circuit
// all see the bit-identical canonical result (meaningful under -race, which
// also guards the Circuit lazy-derived-data hazard the Pipeline clones
// around).
func TestPipelineConcurrentVectors(t *testing.T) {
	c := gen.Random(gen.RandomOptions{PIs: 8, Gates: 60, Seed: 11})
	opt := tpg.Options{Random: 64, Seed: 11, Deterministic: true}
	want := tpg.BuildVectors(c, opt)
	p := NewPipeline(1 << 20)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if got := p.Vectors(context.Background(), c, opt); !reflect.DeepEqual(got, want) {
					errs <- "concurrent cached result differs from fresh run"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
