package baseline

import (
	"sort"

	"dedc/internal/circuit"
	"dedc/internal/fault"
	"dedc/internal/sim"
)

// Dictionary is a precomputed single-fault diagnosis dictionary — the
// classical cause–effect alternative ([9], [11] in the paper) that the
// incremental method competes with. Two granularities are stored:
//
//   - the pass/fail signature (which vectors fail), the compact form
//     shipped to testers, and
//   - a hash of the full primary-output response, which restores most of
//     the full-response dictionary's resolution at a fraction of the size.
type Dictionary struct {
	Faults []fault.Fault
	// passFail[i] is fault i's failing-vector mask.
	passFail [][]uint64
	// fullHash[i] fingerprints fault i's complete PO response.
	fullHash []uint64
	n        int
	w        int
}

// BuildDictionary fault-simulates every given fault and stores its
// signatures. Fault order is preserved.
func BuildDictionary(c *circuit.Circuit, faults []fault.Fault, pi [][]uint64, n int) *Dictionary {
	e := sim.NewEngine(c, pi, n)
	w := sim.Words(n)
	d := &Dictionary{
		Faults:   faults,
		passFail: make([][]uint64, len(faults)),
		fullHash: make([]uint64, len(faults)),
		n:        n,
		w:        w,
	}
	poIdx := make(map[circuit.Line]int, len(c.POs))
	for i, po := range c.POs {
		poIdx[po] = i
	}
	tail := sim.TailMask(n)
	for i, f := range faults {
		var changed []circuit.Line
		if f.IsStem() {
			changed = e.Trial(f.Line, e.ConstRow(f.Value))
		} else {
			g := &c.Gates[f.Reader]
			changed = e.TrialEvalPin(f.Reader, g.Type, g.Fanin, f.Pin, e.ConstRow(f.Value))
		}
		mask := make([]uint64, w)
		h := uint64(1469598103934665603) // FNV offset basis
		// Hash PO diffs in PO order for a canonical fingerprint.
		type poDiff struct {
			idx  int
			line circuit.Line
		}
		var diffs []poDiff
		for _, l := range changed {
			if idx, ok := poIdx[l]; ok {
				diffs = append(diffs, poDiff{idx, l})
			}
		}
		sort.Slice(diffs, func(a, b int) bool { return diffs[a].idx < diffs[b].idx })
		for _, pd := range diffs {
			tv, base := e.TrialVal(pd.line), e.BaseVal(pd.line)
			for j := 0; j < w; j++ {
				dw := tv[j] ^ base[j]
				if j == w-1 {
					dw &= tail
				}
				mask[j] |= dw
				if dw != 0 {
					h ^= uint64(pd.idx)<<32 ^ uint64(j)
					h *= 1099511628211
					h ^= dw
					h *= 1099511628211
				}
			}
		}
		d.passFail[i] = mask
		d.fullHash[i] = h
	}
	return d
}

// signatureOf computes the observed device signatures relative to the
// fault-free machine.
func (d *Dictionary) signatureOf(c *circuit.Circuit, deviceOut [][]uint64, pi [][]uint64) (mask []uint64, hash uint64) {
	good := sim.Simulate(c, pi, d.n)
	tail := sim.TailMask(d.n)
	mask = make([]uint64, d.w)
	hash = uint64(1469598103934665603)
	for i, po := range c.POs {
		row := good[po]
		for j := 0; j < d.w; j++ {
			dw := row[j] ^ deviceOut[i][j]
			if j == d.w-1 {
				dw &= tail
			}
			mask[j] |= dw
			if dw != 0 {
				hash ^= uint64(i)<<32 ^ uint64(j)
				hash *= 1099511628211
				hash ^= dw
				hash *= 1099511628211
			}
		}
	}
	return mask, hash
}

// LookupFull returns the faults whose complete response fingerprint
// matches the device observation — full-response dictionary resolution.
func (d *Dictionary) LookupFull(c *circuit.Circuit, deviceOut [][]uint64, pi [][]uint64) []fault.Fault {
	_, h := d.signatureOf(c, deviceOut, pi)
	var out []fault.Fault
	for i := range d.Faults {
		if d.fullHash[i] == h {
			out = append(out, d.Faults[i])
		}
	}
	return out
}

// LookupPassFail returns the faults whose failing-vector set matches the
// device observation — the coarser pass/fail dictionary.
func (d *Dictionary) LookupPassFail(c *circuit.Circuit, deviceOut [][]uint64, pi [][]uint64) []fault.Fault {
	mask, _ := d.signatureOf(c, deviceOut, pi)
	var out []fault.Fault
	for i := range d.Faults {
		same := true
		for j := 0; j < d.w; j++ {
			if d.passFail[i][j] != mask[j] {
				same = false
				break
			}
		}
		if same {
			out = append(out, d.Faults[i])
		}
	}
	return out
}

// Resolution summarizes dictionary ambiguity: the number of distinct
// full-response classes and the size of the largest class — the classical
// measure of diagnostic resolution.
func (d *Dictionary) Resolution() (classes, largest int) {
	counts := map[uint64]int{}
	for _, h := range d.fullHash {
		counts[h]++
	}
	for _, n := range counts {
		if n > largest {
			largest = n
		}
	}
	return len(counts), largest
}
