// Package baseline provides the reference diagnosis methods the incremental
// algorithm is compared against: classical cause–effect single-fault
// dictionary matching, and exhaustive brute-force tuple enumeration (used to
// certify the exactness claims of Table 1 on small circuits).
package baseline

import (
	"dedc/internal/circuit"
	"dedc/internal/fault"
	"dedc/internal/sim"
)

// SingleFaultMatches returns every single stuck-at fault whose injection
// into the netlist reproduces the device's primary-output responses exactly
// on the vector set — the cause–effect dictionary approach.
func SingleFaultMatches(c *circuit.Circuit, deviceOut [][]uint64, pi [][]uint64, n int) []fault.Fault {
	e := sim.NewEngine(c, pi, n)
	w := sim.Words(n)
	// diffWanted[i] = base PO row XOR device row: the exact change pattern a
	// matching fault must produce at PO i.
	diffWanted := make([][]uint64, len(c.POs))
	for i, po := range c.POs {
		d := make([]uint64, w)
		row := e.BaseVal(po)
		for j := 0; j < w; j++ {
			d[j] = row[j] ^ deviceOut[i][j]
		}
		d[w-1] &= sim.TailMask(n)
		diffWanted[i] = d
	}
	poIdx := make(map[circuit.Line]int, len(c.POs))
	for i, po := range c.POs {
		poIdx[po] = i
	}
	var out []fault.Fault
	for _, f := range fault.AllFaults(c) {
		var changed []circuit.Line
		if f.IsStem() {
			changed = e.Trial(f.Line, e.ConstRow(f.Value))
		} else {
			g := &c.Gates[f.Reader]
			changed = e.TrialEvalPin(f.Reader, g.Type, g.Fanin, f.Pin, e.ConstRow(f.Value))
		}
		if matchesDevice(e, changed, diffWanted, poIdx, n) {
			out = append(out, f)
		}
	}
	return out
}

func matchesDevice(e *sim.Engine, changed []circuit.Line, diffWanted [][]uint64, poIdx map[circuit.Line]int, n int) bool {
	w := sim.Words(n)
	changedPO := map[int]bool{}
	for _, l := range changed {
		if i, ok := poIdx[l]; ok {
			changedPO[i] = true
		}
	}
	for i := range diffWanted {
		if changedPO[i] {
			continue // verified below against the trial value
		}
		for j := 0; j < w; j++ {
			if diffWanted[i][j] != 0 {
				return false // device differs here but the fault is silent
			}
		}
	}
	for _, l := range changed {
		i, ok := poIdx[l]
		if !ok {
			continue
		}
		tv := e.TrialVal(l)
		base := e.BaseVal(l)
		for j := 0; j < w; j++ {
			got := (tv[j] ^ base[j])
			if j == w-1 {
				got &= sim.TailMask(n)
			}
			if got != diffWanted[i][j] {
				return false
			}
		}
	}
	return true
}

// BruteForceTuples enumerates every fault tuple of size at most k whose
// injection reproduces the device outputs, returning only the tuples of
// minimal size (the same contract as the incremental algorithm's exact
// mode). Exponential — intended for certification on small circuits.
func BruteForceTuples(c *circuit.Circuit, deviceOut [][]uint64, pi [][]uint64, n int, k int) []fault.Tuple {
	faults := fault.AllFaults(c)
	var found []fault.Tuple
	var cur []fault.Fault
	var rec func(start, size int)
	matches := func() bool {
		fc := fault.Inject(c, cur...)
		out := sim.Outputs(fc, sim.Simulate(fc, pi, n))
		m := sim.DiffMask(out, deviceOut, n)
		for _, w := range m {
			if w != 0 {
				return false
			}
		}
		return true
	}
	rec = func(start, size int) {
		if len(found) > 0 && len(cur) >= len(found[0]) {
			return // only minimal size wanted; found[0] is minimal by search order
		}
		if size == 0 {
			return
		}
		for i := start; i < len(faults); i++ {
			cur = append(cur, faults[i])
			if matches() {
				t := append(fault.Tuple(nil), cur...)
				found = append(found, t.Canon())
			} else {
				rec(i+1, size-1)
			}
			cur = cur[:len(cur)-1]
		}
	}
	// Iterative deepening guarantees minimal size first.
	for size := 1; size <= k && len(found) == 0; size++ {
		rec(0, size)
	}
	if len(found) == 0 {
		return nil
	}
	minSize := len(found[0])
	var out []fault.Tuple
	seen := map[string]bool{}
	for _, t := range found {
		if len(t) != minSize {
			continue
		}
		key := t.Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, t)
		}
	}
	return out
}
