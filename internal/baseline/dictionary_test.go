package baseline

import (
	"math/rand"
	"testing"

	"dedc/internal/fault"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func TestDictionaryFindsInjectedFault(t *testing.T) {
	c := gen.Alu(4)
	n := 512
	pi := sim.RandomPatterns(len(c.PIs), n, 7)
	faults := fault.AllFaults(c)
	d := BuildDictionary(c, faults, pi, n)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		ft := faults[rng.Intn(len(faults))]
		device := fault.Inject(c, ft)
		devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
		full := d.LookupFull(c, devOut, pi)
		foundFull := false
		for _, m := range full {
			if m == ft {
				foundFull = true
			}
		}
		if !foundFull {
			t.Fatalf("full-response lookup missed injected fault %v", ft)
		}
		pf := d.LookupPassFail(c, devOut, pi)
		if len(pf) < len(full) {
			t.Fatalf("pass/fail lookup (%d) narrower than full-response (%d)", len(pf), len(full))
		}
	}
}

func TestDictionaryFullMatchesAreBehavioral(t *testing.T) {
	// Any fault the full-response lookup returns must really reproduce the
	// device on the vector set (hash collisions would break this).
	c := gen.ECC(8, false)
	n := 384
	pi := sim.RandomPatterns(len(c.PIs), n, 9)
	faults := fault.AllFaults(c)
	d := BuildDictionary(c, faults, pi, n)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		ft := faults[rng.Intn(len(faults))]
		device := fault.Inject(c, ft)
		devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
		for _, m := range d.LookupFull(c, devOut, pi) {
			mc := fault.Inject(c, m)
			mOut := sim.Outputs(mc, sim.Simulate(mc, pi, n))
			for _, w := range sim.DiffMask(mOut, devOut, n) {
				if w != 0 {
					t.Fatalf("full-response match %v does not reproduce device of %v", m, ft)
				}
			}
		}
	}
}

func TestDictionaryResolution(t *testing.T) {
	c := gen.Alu(4)
	n := 512
	pi := sim.RandomPatterns(len(c.PIs), n, 2)
	reps, _ := fault.Collapse(c)
	d := BuildDictionary(c, reps, pi, n)
	classes, largest := d.Resolution()
	if classes < 2 || largest < 1 {
		t.Fatalf("degenerate resolution: %d classes, largest %d", classes, largest)
	}
	// Collapsed representatives should be mostly distinguishable: classes
	// should be a large fraction of the fault count.
	if classes*2 < len(reps) {
		t.Fatalf("resolution too low: %d classes for %d faults", classes, len(reps))
	}
}

func TestDictionaryAgreesWithSingleFaultMatches(t *testing.T) {
	// The dictionary's full-response lookup and the direct trial-based
	// matcher must return the same set.
	c := gen.Random(gen.RandomOptions{PIs: 6, Gates: 50, Seed: 12})
	n := 256
	pi := sim.RandomPatterns(len(c.PIs), n, 4)
	faults := fault.AllFaults(c)
	d := BuildDictionary(c, faults, pi, n)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 8; trial++ {
		ft := faults[rng.Intn(len(faults))]
		device := fault.Inject(c, ft)
		devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
		dict := d.LookupFull(c, devOut, pi)
		direct := SingleFaultMatches(c, devOut, pi, n)
		if len(dict) != len(direct) {
			t.Fatalf("dictionary %d matches vs direct %d", len(dict), len(direct))
		}
		dm := map[fault.Fault]bool{}
		for _, f := range dict {
			dm[f] = true
		}
		for _, f := range direct {
			if !dm[f] {
				t.Fatalf("direct match %v missing from dictionary", f)
			}
		}
	}
}
