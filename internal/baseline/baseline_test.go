package baseline

import (
	"math/rand"
	"testing"

	"dedc/internal/fault"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func TestSingleFaultMatchesFindsActual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		c := gen.Random(gen.RandomOptions{PIs: 6, Gates: 50, Seed: int64(trial)})
		n := 256
		pi := sim.RandomPatterns(len(c.PIs), n, rng.Int63())
		faults := fault.AllFaults(c)
		ft := faults[rng.Intn(len(faults))]
		device := fault.Inject(c, ft)
		devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
		matches := SingleFaultMatches(c, devOut, pi, n)
		found := false
		for _, m := range matches {
			if m == ft {
				found = true
			}
			// Every reported match must really reproduce the behaviour.
			mc := fault.Inject(c, m)
			mOut := sim.Outputs(mc, sim.Simulate(mc, pi, n))
			for _, w := range sim.DiffMask(mOut, devOut, n) {
				if w != 0 {
					t.Fatalf("trial %d: reported match %v does not reproduce device", trial, m)
				}
			}
		}
		if !found {
			t.Fatalf("trial %d: actual fault %v not matched", trial, ft)
		}
	}
}

func TestSingleFaultMatchesEmptyForMultipleFaults(t *testing.T) {
	// A double fault usually has no single-fault explanation; when the
	// dictionary returns nothing, that absence is meaningful.
	c := gen.Alu(4)
	n := 512
	pi := sim.RandomPatterns(len(c.PIs), n, 5)
	sites := fault.Sites(c)
	f1 := fault.Fault{Site: sites[10], Value: true}
	f2 := fault.Fault{Site: sites[40], Value: false}
	device := fault.Inject(c, f1, f2)
	devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
	matches := SingleFaultMatches(c, devOut, pi, n)
	for _, m := range matches {
		mc := fault.Inject(c, m)
		mOut := sim.Outputs(mc, sim.Simulate(mc, pi, n))
		for _, w := range sim.DiffMask(mOut, devOut, n) {
			if w != 0 {
				t.Fatalf("spurious match %v", m)
			}
		}
	}
}

func TestBruteForceFindsMinimalTuples(t *testing.T) {
	c := gen.Random(gen.RandomOptions{PIs: 5, Gates: 20, Seed: 9})
	n := 256
	pi := sim.RandomPatterns(len(c.PIs), n, 7)
	sites := fault.Sites(c)
	f1 := fault.Fault{Site: sites[3], Value: true}
	device := fault.Inject(c, f1)
	devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
	tuples := BruteForceTuples(c, devOut, pi, n, 2)
	if len(tuples) == 0 {
		t.Fatal("no tuples found")
	}
	for _, tu := range tuples {
		if len(tu) != 1 {
			t.Fatalf("non-minimal tuple %v returned", tu)
		}
	}
	found := false
	for _, tu := range tuples {
		if tu[0] == f1 {
			found = true
		}
	}
	if !found {
		t.Fatal("actual fault missing from brute force result")
	}
}

func TestBruteForceDoubleFault(t *testing.T) {
	c := gen.Random(gen.RandomOptions{PIs: 4, Gates: 12, Seed: 17})
	n := 256
	pi := sim.RandomPatterns(len(c.PIs), n, 3)
	sites := fault.Sites(c)
	// Choose two faults that are not individually explicable: verify the
	// brute force returns pairs.
	f1 := fault.Fault{Site: sites[1], Value: true}
	f2 := fault.Fault{Site: sites[len(sites)-2], Value: false}
	device := fault.Inject(c, f1, f2)
	devOut := sim.Outputs(device, sim.Simulate(device, pi, n))
	tuples := BruteForceTuples(c, devOut, pi, n, 2)
	if len(tuples) == 0 {
		t.Skip("behaviour explained by nothing within size 2 (masking); skip")
	}
	size := len(tuples[0])
	for _, tu := range tuples {
		if len(tu) != size {
			t.Fatalf("mixed tuple sizes in result")
		}
		fc := fault.Inject(c, tu...)
		fcOut := sim.Outputs(fc, sim.Simulate(fc, pi, n))
		for _, w := range sim.DiffMask(fcOut, devOut, n) {
			if w != 0 {
				t.Fatalf("tuple %v does not explain device", tu)
			}
		}
	}
}
