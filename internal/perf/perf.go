package perf

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"dedc/internal/bench"
	"dedc/internal/cache"
	"dedc/internal/circuit"
	"dedc/internal/diagnose"
	"dedc/internal/equiv"
	"dedc/internal/fault"
	"dedc/internal/gen"
	"dedc/internal/pathtrace"
	"dedc/internal/scan"
	"dedc/internal/sim"
	"dedc/internal/telemetry"
	"dedc/internal/tpg"
)

// Phases in report order. Each is an independently repeatable op, not a
// partition of one run: h1rank and screen each expand a root decision-tree
// node (their ns/op is the engine's own DiagTime/CorrTime phase timer), and
// pathtrace is also exercised standalone for a clean allocation count.
const (
	PhaseParse     = "parse"     // .bench text -> circuit
	PhaseVectors   = "vectors"   // random + PODEM vector build (tpg.backtracks)
	PhaseSimulate  = "simulate"  // parallel-pattern base simulation
	PhasePathTrace = "pathtrace" // path-trace marking + Top cut
	PhaseH1Rank    = "h1rank"    // heuristic-1 suspect ranking (sim.trials)
	PhaseScreen    = "screen"    // correction enumeration + Theorem-1/Vcorr screens
	PhaseSATCheck  = "satcheck"  // SAT equivalence self-proof (sat.conflicts)

	// Reuse variants of the two hot phases above, measuring the repeated-
	// circuit workload a fleet actually sees: the same vector build served
	// from the content-addressed cache, and the same equivalence check
	// re-proved on a persistent incremental SAT session. Their cold
	// counterparts (vectors, satcheck) stay pinned to the fresh path, so a
	// report holding both is a cold-vs-warm pair per scenario —
	// Report.AtpgSpeedups divides them.
	PhaseVectorsCached = "vectors_cached" // warm cache.Pipeline hit (cache.hits)
	PhaseSATCheckInc   = "satcheck_inc"   // warm equiv.Session re-check (sat.propagations)
)

// ParallelPhase names the engine-pool variant of a phase at a worker count,
// e.g. "screen_w4": the same root expansion as the base phase on the same
// circuit × fault × vector cell, with the trial fan-outs sharded over the
// pool. The base h1rank/screen phases are always measured with Workers=1
// (the exact legacy path), so a report holding both is a w1-vs-wN comparison
// on identical work — Report.Speedups divides the pairs.
func ParallelPhase(base string, workers int) string {
	return fmt.Sprintf("%s_w%d", base, workers)
}

// Scenario is one suite cell: a generated circuit, a fault multiplicity and
// a random-vector budget.
type Scenario struct {
	Circuit string // gen.ByName benchmark
	Faults  int
	Vectors int
	Seed    int64
}

// Name is the scenario's stable report key, e.g. "alu4/f2/v256".
func (s Scenario) Name() string {
	return fmt.Sprintf("%s/f%d/v%d", s.Circuit, s.Faults, s.Vectors)
}

// QuickSuite is the short deterministic suite behind `make bench` and the
// make-check trajectory: small enough to run in seconds, varied enough to
// cover every pipeline phase on arithmetic, ECC and random control logic.
func QuickSuite() []Scenario {
	return []Scenario{
		{Circuit: "alu4", Faults: 1, Vectors: 256, Seed: 1},
		{Circuit: "ecc8", Faults: 1, Vectors: 256, Seed: 1},
		{Circuit: "addcmp8", Faults: 2, Vectors: 256, Seed: 1},
		{Circuit: "mult4", Faults: 2, Vectors: 256, Seed: 1},
		{Circuit: "rnd300", Faults: 1, Vectors: 512, Seed: 1},
	}
}

// FullSuite covers the paper-scale combinational benchmarks at realistic
// vector budgets; minutes, not seconds.
func FullSuite() []Scenario {
	return []Scenario{
		{Circuit: "c432*", Faults: 1, Vectors: 2048, Seed: 1},
		{Circuit: "c880*", Faults: 2, Vectors: 2048, Seed: 1},
		{Circuit: "c1355*", Faults: 1, Vectors: 2048, Seed: 1},
		{Circuit: "c2670*", Faults: 2, Vectors: 4096, Seed: 1},
		{Circuit: "c3540*", Faults: 3, Vectors: 4096, Seed: 1},
		{Circuit: "c6288*", Faults: 2, Vectors: 2048, Seed: 1},
		{Circuit: "c7552*", Faults: 2, Vectors: 4096, Seed: 1},
	}
}

// Suite resolves a suite name ("quick" or "full").
func Suite(name string) ([]Scenario, error) {
	switch name {
	case "quick":
		return QuickSuite(), nil
	case "full":
		return FullSuite(), nil
	}
	return nil, fmt.Errorf("perf: unknown suite %q (want quick or full)", name)
}

// Options tunes a suite run.
type Options struct {
	// BestOf is the repetition count per phase; the fastest rep is reported.
	// Zero means 3.
	BestOf int
	// MaxConflicts bounds the satcheck phase's SAT proof so array
	// multipliers can't stall the suite. Zero means 50000.
	MaxConflicts int64
	// Workers, when at least 2, adds engine-pool variants of the h1rank and
	// screen phases (named by ParallelPhase) measured at that worker count.
	// The base phases stay pinned to the exact sequential path either way,
	// so the report carries a w1-vs-wN pair per scenario. Zero or 1 measures
	// the sequential phases only.
	Workers int
	// Logf, when set, receives one progress line per scenario.
	Logf func(format string, args ...any)
}

func (o Options) defaults() Options {
	if o.BestOf == 0 {
		o.BestOf = 3
	}
	if o.MaxConflicts == 0 {
		o.MaxConflicts = 50000
	}
	return o
}

// Run measures every scenario and assembles the report.
func Run(suiteName string, scenarios []Scenario, opt Options) (*Report, error) {
	opt = opt.defaults()
	rep := &Report{
		Schema: SchemaVersion,
		Suite:  suiteName,
		BestOf: opt.BestOf,
		Go:     runtime.Version(),
	}
	for _, sc := range scenarios {
		sr, err := runScenario(sc, opt)
		if err != nil {
			return nil, fmt.Errorf("perf: scenario %s: %w", sc.Name(), err)
		}
		rep.Scenarios = append(rep.Scenarios, *sr)
		if opt.Logf != nil {
			opt.Logf("measured %s (%d lines, %d failing vectors)", sc.Name(), sr.Lines, sr.FailVectors)
		}
	}
	return rep, nil
}

// nullModel enumerates no corrections, so an ExpandRoot under it measures
// the diagnosis side (path trace + heuristic-1 ranking) alone.
type nullModel struct{}

func (nullModel) Enumerate(*circuit.Circuit, circuit.Line) []diagnose.Correction { return nil }

func runScenario(sc Scenario, opt Options) (*ScenarioResult, error) {
	bm, ok := gen.ByName(sc.Circuit)
	if !ok {
		return nil, fmt.Errorf("unknown circuit %q", sc.Circuit)
	}
	good := bm.Build()
	if bm.Sequential {
		cv, err := scan.Convert(good)
		if err != nil {
			return nil, err
		}
		good = cv.Comb
	}
	faults := fault.PickObservable(good, sc.Faults, sc.Seed)
	if faults == nil {
		return nil, fmt.Errorf("no observable %d-fault combination", sc.Faults)
	}
	bad := fault.Inject(good, faults...)

	var benchText bytes.Buffer
	if err := bench.Write(&benchText, bad); err != nil {
		return nil, err
	}

	// A dedicated registry + journal-less tracer: the pipeline's counter
	// wiring (engine trials, PODEM backtracks, SAT stats) and span-duration
	// histograms all resolve through the context exactly as in production.
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithTracer(context.Background(), telemetry.NewTracer(telemetry.Options{Registry: reg}))

	topt := tpg.Options{Random: sc.Vectors, Seed: sc.Seed, Deterministic: true}
	vecs := tpg.BuildVectorsContext(ctx, good, topt)
	pi, n := vecs.PI, vecs.N
	specOut := diagnose.DeviceOutputs(good, pi, n)
	badOut := diagnose.DeviceOutputs(bad, pi, n)
	fails := 0
	for _, w := range sim.DiffMask(badOut, specOut, n) {
		for ; w != 0; w &= w - 1 {
			fails++
		}
	}
	if fails == 0 {
		return nil, fmt.Errorf("injected faults invisible on the %d-vector set", n)
	}
	e := sim.NewEngine(bad, pi, n)
	vals := e.Values()

	// Workers: 1 pins the base h1rank/screen phases to the exact sequential
	// path, so their timings gate the legacy loop and the _wN variants below
	// measure the pool against an honest w1 reference.
	dopt := diagnose.Options{MaxErrors: sc.Faults, Workers: 1}
	params := diagnose.DefaultSchedule()[0]
	if sc.Faults > 1 {
		// Multi-fault nodes only do real work below 1/1/1 (the relaxed
		// steps are where production runs spend their time).
		params = diagnose.DefaultSchedule()[2]
	}

	sr := &ScenarioResult{
		Scenario:    sc.Name(),
		Circuit:     sc.Circuit,
		Faults:      sc.Faults,
		Vectors:     sc.Vectors,
		Lines:       bad.NumLines(),
		FailVectors: fails,
	}
	var err error
	run := func(phase string, op func() (int64, error)) {
		if err != nil {
			return
		}
		var pr PhaseResult
		pr, err = measure(reg, phase, opt.BestOf, op)
		if err == nil {
			sr.Phases = append(sr.Phases, pr)
		}
	}

	run(PhaseParse, func() (int64, error) {
		_, perr := bench.Read(bytes.NewReader(benchText.Bytes()))
		return 0, perr
	})
	run(PhaseVectors, func() (int64, error) {
		tpg.BuildVectorsContext(ctx, good, topt)
		return 0, nil
	})
	if opt.Workers > 1 {
		wopt := topt
		wopt.Workers = opt.Workers
		run(ParallelPhase(PhaseVectors, opt.Workers), func() (int64, error) {
			tpg.BuildVectorsContext(ctx, good, wopt)
			return 0, nil
		})
	}
	// The warm-cache variant: measure's untimed warmup run pays the one miss
	// that populates the pipeline, so every measured rep is a pure hit — the
	// repeated-circuit fleet workload. The pipeline shares the scenario's
	// registry, so cache.hits lands in the phase's counter deltas.
	pipe := cache.NewPipeline(64 << 20)
	pipe.Instrument(reg)
	run(PhaseVectorsCached, func() (int64, error) {
		pipe.Vectors(ctx, good, topt)
		return 0, nil
	})
	run(PhaseSimulate, func() (int64, error) {
		sim.Simulate(bad, pi, n)
		return 0, nil
	})
	run(PhasePathTrace, func() (int64, error) {
		pt := pathtrace.Trace(bad, vals, specOut, n)
		pt.Top(dopt.PathTraceKeep, dopt.MinKeep)
		return 0, nil
	})
	run(PhaseH1Rank, func() (int64, error) {
		_, stats := diagnose.ExpandRoot(ctx, bad, specOut, pi, n, nullModel{}, dopt, params)
		return stats.DiagTime.Nanoseconds(), nil
	})
	run(PhaseScreen, func() (int64, error) {
		_, stats := diagnose.ExpandRoot(ctx, bad, specOut, pi, n, diagnose.StuckAtModel{}, dopt, params)
		return stats.CorrTime.Nanoseconds(), nil
	})
	if opt.Workers > 1 {
		popt := dopt
		popt.Workers = opt.Workers
		run(ParallelPhase(PhaseH1Rank, opt.Workers), func() (int64, error) {
			_, stats := diagnose.ExpandRoot(ctx, bad, specOut, pi, n, nullModel{}, popt, params)
			return stats.DiagTime.Nanoseconds(), nil
		})
		run(ParallelPhase(PhaseScreen, opt.Workers), func() (int64, error) {
			_, stats := diagnose.ExpandRoot(ctx, bad, specOut, pi, n, diagnose.StuckAtModel{}, popt, params)
			return stats.CorrTime.Nanoseconds(), nil
		})
	}
	run(PhaseSATCheck, func() (int64, error) {
		_, cerr := equiv.Check(good, good, equiv.Options{MaxConflicts: opt.MaxConflicts, Ctx: ctx})
		return 0, cerr
	})
	// The warm-session variant: the warmup run pays the one-time encode and
	// full proof; measured reps re-prove the same candidate on the persistent
	// solver, where the learnt clauses have already root-falsified the
	// activation literal and the re-check is pure propagation.
	session, serr := equiv.NewSession(good)
	if serr != nil {
		return nil, serr
	}
	run(PhaseSATCheckInc, func() (int64, error) {
		_, cerr := session.Check(good, equiv.Options{MaxConflicts: opt.MaxConflicts, Ctx: ctx})
		return 0, cerr
	})
	if err != nil {
		return nil, err
	}
	return sr, nil
}

// Adaptive sampling bounds: beyond the configured best-of floor, a phase
// keeps repeating until it has accumulated minSampleTime of wall clock (or
// hits maxReps), because the min of a handful of single-shot millisecond
// runs is at the mercy of scheduler noise — exactly what a regression gate
// cannot afford.
const (
	minSampleTime = 50 * time.Millisecond
	maxReps       = 25
)

// measure runs op best-of-N (N adaptive, at least bestOf) and keeps the
// fastest rep: its duration (the op's self-reported phase timer when it
// returns one, wall clock otherwise), its heap allocation count, and its
// telemetry counter deltas. One untimed warmup run precedes the loop.
func measure(reg *telemetry.Registry, phase string, bestOf int, op func() (int64, error)) (PhaseResult, error) {
	if _, err := op(); err != nil {
		return PhaseResult{}, fmt.Errorf("phase %s: %w", phase, err)
	}
	best := PhaseResult{Phase: phase, NsPerOp: math.MaxInt64}
	var m0, m1 runtime.MemStats
	var total time.Duration
	for rep := 0; rep < bestOf || total < minSampleTime && rep < maxReps; rep++ {
		before := counterValues(reg)
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		selfNs, err := op()
		wall := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return PhaseResult{}, fmt.Errorf("phase %s: %w", phase, err)
		}
		total += wall
		ns := wall.Nanoseconds()
		if selfNs > 0 {
			ns = selfNs
		}
		if ns < best.NsPerOp {
			best.NsPerOp = ns
			best.AllocsPerOp = int64(m1.Mallocs - m0.Mallocs)
			best.Counters = counterDelta(before, counterValues(reg))
		}
	}
	return best, nil
}

// counterValues snapshots every scalar (counter/gauge) metric.
func counterValues(reg *telemetry.Registry) map[string]int64 {
	out := map[string]int64{}
	for name, v := range reg.Snapshot() {
		if n, ok := v.(int64); ok {
			out[name] = n
		}
	}
	return out
}

// counterDelta keeps the scalars that moved during the op.
func counterDelta(before, after map[string]int64) map[string]int64 {
	var out map[string]int64
	for name, a := range after {
		if d := a - before[name]; d != 0 {
			if out == nil {
				out = map[string]int64{}
			}
			out[name] = d
		}
	}
	return out
}
