// Package perf is the continuous performance-observability harness: a
// scenario suite (generated circuits × fault multiplicity × vector budget)
// that runs the diagnosis pipeline phase by phase, measures each phase
// best-of-N with the engine's own phase timers and telemetry counter deltas,
// and emits a versioned machine-readable report (BENCH_core.json) that later
// runs are gated against. cmd/dedcbench is the CLI front end.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// SchemaVersion is the value of the report's "schema" field. Bump it on any
// incompatible change to field names or semantics, and keep ReadReport
// rejecting versions it does not understand.
const SchemaVersion = 1

// PhaseResult is one measured pipeline phase of one scenario.
type PhaseResult struct {
	Phase string `json:"phase"`
	// NsPerOp is the best-of-N duration of one phase execution. For h1rank
	// and screen it is the engine's own phase timer (Stats.DiagTime /
	// Stats.CorrTime), i.e. exactly the diag_ns/corr_ns attributed to node
	// spans in run journals.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is the heap allocation count of the best run's op (for
	// h1rank/screen: of the whole root expansion the timer is embedded in).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Counters holds per-op telemetry counter deltas (sim.trials,
	// sat.conflicts, tpg.backtracks, ...) observed during the best run.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// ScenarioResult is one scenario's measurements.
type ScenarioResult struct {
	Scenario string `json:"scenario"` // "alu4/f2/v256"
	Circuit  string `json:"circuit"`
	Faults   int    `json:"faults"`
	Vectors  int    `json:"vectors"` // requested random-vector budget
	Lines    int    `json:"lines"`   // circuit size
	// FailVectors is how many vectors the injected faults actually fail —
	// the diagnosis workload's input size, recorded so a timing shift can be
	// told apart from a workload shift.
	FailVectors int           `json:"fail_vectors"`
	Phases      []PhaseResult `json:"phases"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Schema    int              `json:"schema"`
	Suite     string           `json:"suite"`
	BestOf    int              `json:"best_of"`
	Go        string           `json:"go"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses and validates a report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: parsing report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: report schema v%d, this build understands v%d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// scenario returns the named scenario result, or nil.
func (r *Report) scenario(name string) *ScenarioResult {
	for i := range r.Scenarios {
		if r.Scenarios[i].Scenario == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// phase returns the named phase result, or nil.
func (s *ScenarioResult) phase(name string) *PhaseResult {
	for i := range s.Phases {
		if s.Phases[i].Phase == name {
			return &s.Phases[i]
		}
	}
	return nil
}

// Speedup is one sequential-vs-parallel measurement pair: a scenario whose
// report holds both a base phase (h1rank or screen, always measured at
// Workers=1) and its engine-pool variant at a given worker count.
type Speedup struct {
	Scenario string
	Phase    string // base (sequential) phase name
	Workers  int
	SeqNs    int64
	ParNs    int64
	Factor   float64 // SeqNs / ParNs; >1 means the pool was faster
}

func (s Speedup) String() string {
	if s.Workers == 0 {
		// A reuse pair (AtpgSpeedups): cold fresh run vs warm cached or
		// incremental re-run, parallelism not involved.
		return fmt.Sprintf("%s/%s: %v cold -> %v warm (%.0fx)",
			s.Scenario, s.Phase, time.Duration(s.SeqNs), time.Duration(s.ParNs), s.Factor)
	}
	return fmt.Sprintf("%s/%s: %v -> %v at %d workers (%.2fx)",
		s.Scenario, s.Phase, time.Duration(s.SeqNs), time.Duration(s.ParNs), s.Workers, s.Factor)
}

// Speedups extracts the h1rank/screen pool speedups at the given worker
// count from every scenario that measured both variants. Scenarios without
// a _wN phase (a report recorded with Workers<2) contribute nothing.
func (r *Report) Speedups(workers int) []Speedup {
	var out []Speedup
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		for _, base := range []string{PhaseH1Rank, PhaseScreen} {
			sp := sc.phase(base)
			pp := sc.phase(ParallelPhase(base, workers))
			if sp == nil || pp == nil || sp.NsPerOp <= 0 || pp.NsPerOp <= 0 {
				continue
			}
			out = append(out, Speedup{
				Scenario: sc.Scenario,
				Phase:    base,
				Workers:  workers,
				SeqNs:    sp.NsPerOp,
				ParNs:    pp.NsPerOp,
				Factor:   float64(sp.NsPerOp) / float64(pp.NsPerOp),
			})
		}
	}
	return out
}

// AtpgSpeedups extracts the cold-vs-reuse pairs of the ATPG/SAT hot phases
// from every scenario that measured both sides: vectors against
// vectors_cached (content-addressed cache hit) and satcheck against
// satcheck_inc (incremental SAT session re-check). Factor is cold/warm;
// Workers is 0 — these wins come from reuse, not parallelism, so they hold
// on any core count.
func (r *Report) AtpgSpeedups() []Speedup {
	pairs := [][2]string{
		{PhaseVectors, PhaseVectorsCached},
		{PhaseSATCheck, PhaseSATCheckInc},
	}
	var out []Speedup
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		for _, pair := range pairs {
			cold := sc.phase(pair[0])
			warm := sc.phase(pair[1])
			if cold == nil || warm == nil || cold.NsPerOp <= 0 || warm.NsPerOp <= 0 {
				continue
			}
			out = append(out, Speedup{
				Scenario: sc.Scenario,
				Phase:    pair[0],
				SeqNs:    cold.NsPerOp,
				ParNs:    warm.NsPerOp,
				Factor:   float64(cold.NsPerOp) / float64(warm.NsPerOp),
			})
		}
	}
	return out
}

// CombinedGeomean aggregates every pair's factor into one geometric mean —
// the statistic behind the make bench-atpg gate, spanning both pair kinds so
// the target is "vectors+satcheck together", as the roadmap phrases it.
func CombinedGeomean(sps []Speedup) float64 {
	logSum, n := 0.0, 0
	for _, s := range sps {
		if s.Factor > 0 {
			logSum += math.Log(s.Factor)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// GeomeanSpeedup aggregates one phase's speedup factors across scenarios as
// a geometric mean — the gate statistic, so one tiny scenario (whose
// fan-outs are too short to shard profitably) cannot veto a suite-wide win
// the way a min would, while a genuine across-the-board loss still shows.
// It returns 0 when no scenario measured the phase.
func GeomeanSpeedup(sps []Speedup, phase string) float64 {
	logSum, n := 0.0, 0
	for _, s := range sps {
		if s.Phase == phase && s.Factor > 0 {
			logSum += math.Log(s.Factor)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Scenario string
	Phase    string
	// Missing marks a (scenario, phase) present in the baseline but absent
	// from the current report — a coverage regression, gated like a slowdown.
	Missing    bool
	BaselineNs int64
	CurrentNs  int64
	Ratio      float64 // CurrentNs / BaselineNs
}

func (g Regression) String() string {
	if g.Missing {
		return fmt.Sprintf("%s/%s: missing from current report (baseline %v)",
			g.Scenario, g.Phase, time.Duration(g.BaselineNs))
	}
	return fmt.Sprintf("%s/%s: %v -> %v (%.2fx)",
		g.Scenario, g.Phase, time.Duration(g.BaselineNs), time.Duration(g.CurrentNs), g.Ratio)
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Tolerance is the allowed relative slowdown per phase (0.10 = +10%).
	// Zero means the 0.10 default.
	Tolerance float64
	// Slack is an absolute grace added on top of the relative bound, so
	// micro-phases (a parse taking tens of microseconds) don't trip the gate
	// on scheduler noise. Zero means the 250µs default; negative disables.
	Slack time.Duration
}

func (o CompareOptions) defaults() CompareOptions {
	if o.Tolerance == 0 {
		o.Tolerance = 0.10
	}
	if o.Slack == 0 {
		o.Slack = 250 * time.Microsecond
	}
	if o.Slack < 0 {
		o.Slack = 0
	}
	return o
}

// MergeMin folds a re-measurement into r: for every scenario both reports
// contain, each phase keeps whichever measurement was faster (best-of across
// runs, matching the per-run best-of-N semantics). Scenarios or phases only
// in other are ignored. cmd/dedcbench uses this to confirm gate failures by
// re-measuring just the implicated scenarios: a real slowdown reproduces, a
// scheduler hiccup does not.
func (r *Report) MergeMin(other *Report) {
	for i := range r.Scenarios {
		os := other.scenario(r.Scenarios[i].Scenario)
		if os == nil {
			continue
		}
		for j := range r.Scenarios[i].Phases {
			if op := os.phase(r.Scenarios[i].Phases[j].Phase); op != nil && op.NsPerOp < r.Scenarios[i].Phases[j].NsPerOp {
				r.Scenarios[i].Phases[j] = *op
			}
		}
	}
}

// Compare gates current against baseline: every (scenario, phase) in the
// baseline must exist in current and satisfy
//
//	current.ns <= baseline.ns·(1+Tolerance) + Slack.
//
// It returns the violations (nil when the gate passes). Scenarios or phases
// that exist only in current are fine — coverage can grow freely.
func Compare(baseline, current *Report, opt CompareOptions) []Regression {
	opt = opt.defaults()
	var out []Regression
	for _, bs := range baseline.Scenarios {
		cs := current.scenario(bs.Scenario)
		for _, bp := range bs.Phases {
			if cs == nil {
				out = append(out, Regression{Scenario: bs.Scenario, Phase: bp.Phase, Missing: true, BaselineNs: bp.NsPerOp})
				continue
			}
			cp := cs.phase(bp.Phase)
			if cp == nil {
				out = append(out, Regression{Scenario: bs.Scenario, Phase: bp.Phase, Missing: true, BaselineNs: bp.NsPerOp})
				continue
			}
			bound := int64(float64(bp.NsPerOp)*(1+opt.Tolerance)) + opt.Slack.Nanoseconds()
			if cp.NsPerOp > bound {
				ratio := 0.0
				if bp.NsPerOp > 0 {
					ratio = float64(cp.NsPerOp) / float64(bp.NsPerOp)
				}
				out = append(out, Regression{
					Scenario:   bs.Scenario,
					Phase:      bp.Phase,
					BaselineNs: bp.NsPerOp,
					CurrentNs:  cp.NsPerOp,
					Ratio:      ratio,
				})
			}
		}
	}
	return out
}
