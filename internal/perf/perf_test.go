package perf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: SchemaVersion,
		Suite:  "quick",
		BestOf: 3,
		Go:     "go1.x",
		Scenarios: []ScenarioResult{
			{
				Scenario: "alu4/f1/v256", Circuit: "alu4", Faults: 1, Vectors: 256,
				Lines: 108, FailVectors: 115,
				Phases: []PhaseResult{
					{Phase: PhaseParse, NsPerOp: 40_000, AllocsPerOp: 900},
					{Phase: PhaseVectors, NsPerOp: 2_000_000, AllocsPerOp: 5_000,
						Counters: map[string]int64{"tpg.backtracks": 12}},
					{Phase: PhaseSATCheck, NsPerOp: 9_000_000, AllocsPerOp: 40_000,
						Counters: map[string]int64{"sat.conflicts": 321}},
				},
			},
			{
				Scenario: "ecc8/f1/v256", Circuit: "ecc8", Faults: 1, Vectors: 256,
				Lines: 130, FailVectors: 75,
				Phases: []PhaseResult{
					{Phase: PhaseParse, NsPerOp: 55_000, AllocsPerOp: 1_100},
					{Phase: PhaseSimulate, NsPerOp: 300_000, AllocsPerOp: 200,
						Counters: map[string]int64{"sim.events": 4_000}},
				},
			},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for _, want := range []string{`"schema": 1`, `"ns_per_op"`, `"allocs_per_op"`, `"fail_vectors"`, `"tpg.backtracks"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report JSON missing %s:\n%s", want, buf.String())
		}
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema": 99}`)); err == nil {
		t.Fatal("schema v99 accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed report accepted")
	}
}

func TestCompareSelfPasses(t *testing.T) {
	rep := sampleReport()
	if regs := Compare(rep, rep, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("self-compare found regressions: %v", regs)
	}
}

func TestCompareWithinToleranceAndSlack(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	// +9% on a millisecond phase: inside the relative tolerance.
	cur.Scenarios[0].Phases[1].NsPerOp = 2_180_000
	// +150µs on a 40µs phase: a 4.7x blowup, but inside the absolute slack
	// that keeps micro-phases from gating on scheduler noise.
	cur.Scenarios[0].Phases[0].NsPerOp = 190_000
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("tolerated drift gated: %v", regs)
	}
	// With slack disabled the micro-phase blowup must gate.
	regs := Compare(base, cur, CompareOptions{Slack: -1})
	if len(regs) != 1 || regs[0].Phase != PhaseParse {
		t.Fatalf("slack -1: want 1 parse regression, got %v", regs)
	}
}

func TestCompareFlagsTwoFoldSlowdown(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	for i := range cur.Scenarios {
		for j := range cur.Scenarios[i].Phases {
			cur.Scenarios[i].Phases[j].NsPerOp *= 2
		}
	}
	// The two parse micro-phases (40µs, 55µs) stay under the absolute slack
	// even doubled; every phase above the noise floor must gate.
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 3 {
		t.Fatalf("2x slowdown: want 3 phases gated, got %d: %v", len(regs), regs)
	}
	if all := Compare(base, cur, CompareOptions{Slack: -1}); len(all) != 5 {
		t.Fatalf("2x slowdown, no slack: want all 5 phases gated, got %d: %v", len(all), all)
	}
	for _, g := range regs {
		if g.Missing {
			t.Errorf("%s/%s reported missing, want slowdown", g.Scenario, g.Phase)
		}
		if g.Ratio < 1.9 || g.Ratio > 2.1 {
			t.Errorf("%s/%s ratio %.2f, want ~2", g.Scenario, g.Phase, g.Ratio)
		}
	}
}

func TestCompareFlagsMissingCoverage(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	// Drop one phase and one whole scenario from current.
	cur.Scenarios[0].Phases = cur.Scenarios[0].Phases[:2] // loses satcheck
	cur.Scenarios = cur.Scenarios[:1]                     // loses ecc8 (2 phases)
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 3 {
		t.Fatalf("want 3 coverage regressions, got %d: %v", len(regs), regs)
	}
	for _, g := range regs {
		if !g.Missing {
			t.Errorf("%s/%s not marked missing", g.Scenario, g.Phase)
		}
		if !strings.Contains(g.String(), "missing") {
			t.Errorf("String() = %q, want mention of missing", g.String())
		}
	}
	// Extra coverage in current must never gate.
	grown := sampleReport()
	grown.Scenarios[0].Phases = append(grown.Scenarios[0].Phases,
		PhaseResult{Phase: PhaseScreen, NsPerOp: 1})
	if regs := Compare(base, grown, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("grown coverage gated: %v", regs)
	}
}

func TestMergeMinKeepsFasterRep(t *testing.T) {
	rep := sampleReport()
	again := sampleReport()
	// The re-run was faster on vectors (should replace, with its counters)
	// and slower on parse (should be ignored).
	again.Scenarios[0].Phases[1].NsPerOp = 1_500_000
	again.Scenarios[0].Phases[1].Counters = map[string]int64{"tpg.backtracks": 11}
	again.Scenarios[0].Phases[0].NsPerOp = 99_000
	rep.MergeMin(again)
	if got := rep.Scenarios[0].Phases[1]; got.NsPerOp != 1_500_000 || got.Counters["tpg.backtracks"] != 11 {
		t.Errorf("faster re-run not folded in: %+v", got)
	}
	if got := rep.Scenarios[0].Phases[0].NsPerOp; got != 40_000 {
		t.Errorf("slower re-run replaced the original: %d", got)
	}
}

func TestSuiteNames(t *testing.T) {
	for _, name := range []string{"quick", "full"} {
		scs, err := Suite(name)
		if err != nil || len(scs) < 4 {
			t.Errorf("Suite(%q) = %d scenarios, err %v; want >=4", name, len(scs), err)
		}
	}
	if _, err := Suite("nope"); err == nil {
		t.Error("Suite(nope) accepted")
	}
}

// TestRunQuickScenario measures one real (small) scenario end to end and
// checks the report shape: every pipeline phase present, positive timings,
// and the counter wiring live (PODEM backtracks or SAT conflicts observed).
func TestRunQuickScenario(t *testing.T) {
	scs := []Scenario{{Circuit: "alu4", Faults: 1, Vectors: 64, Seed: 1}}
	rep, err := Run("quick", scs, Options{BestOf: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Schema != SchemaVersion || len(rep.Scenarios) != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	sr := rep.Scenarios[0]
	if sr.Scenario != "alu4/f1/v64" || sr.Lines == 0 || sr.FailVectors == 0 {
		t.Fatalf("scenario header: %+v", sr)
	}
	wantPhases := []string{PhaseParse, PhaseVectors, PhaseVectorsCached, PhaseSimulate, PhasePathTrace, PhaseH1Rank, PhaseScreen, PhaseSATCheck, PhaseSATCheckInc}
	if len(sr.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases, want %d: %+v", len(sr.Phases), len(wantPhases), sr.Phases)
	}
	counters := map[string]int64{}
	for i, ph := range sr.Phases {
		if ph.Phase != wantPhases[i] {
			t.Errorf("phase[%d] = %s, want %s", i, ph.Phase, wantPhases[i])
		}
		if ph.NsPerOp <= 0 {
			t.Errorf("phase %s: ns/op %d, want > 0", ph.Phase, ph.NsPerOp)
		}
		for k, v := range ph.Counters {
			counters[k] += v
		}
	}
	if counters["sim.trials"] == 0 {
		t.Errorf("no sim.trials counted across phases: %v", counters)
	}
	// Determinism of the workload itself (not the timings): a second run
	// sees the same circuit, fault visibility and vector count.
	rep2, err := Run("quick", scs, Options{BestOf: 1})
	if err != nil {
		t.Fatalf("Run #2: %v", err)
	}
	if rep2.Scenarios[0].FailVectors != sr.FailVectors || rep2.Scenarios[0].Lines != sr.Lines {
		t.Errorf("workload not deterministic: %+v vs %+v", rep2.Scenarios[0], sr)
	}
}
