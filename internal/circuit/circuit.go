// Package circuit provides the gate-level netlist data structures shared by
// every other package in this repository: gates, lines, fanout bookkeeping,
// levelization, cone extraction and the ISCAS-style line accounting used to
// report circuit sizes in the experiment tables.
//
// A circuit is a DAG of gates. Every gate drives exactly one output net,
// identified by a Line, which is simply the gate's index in the Gates slice.
// Primary inputs are pseudo-gates of type Input with no fanin. Flip-flops
// (type DFF) are allowed so that full-scan sequential circuits can be
// represented; package scan converts them to a combinational view.
package circuit

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors for boundary validation. Errors returned by Validate and
// TopoChecked wrap these, so callers can classify failures with errors.Is
// without parsing messages.
var (
	// ErrInvalidNetlist marks structural ill-formedness: illegal fanin
	// arities, out-of-range references, inconsistent PI bookkeeping.
	ErrInvalidNetlist = errors.New("invalid netlist")
	// ErrCombinationalCycle marks a cycle not broken by a state element.
	ErrCombinationalCycle = errors.New("combinational cycle detected")
)

// GateType enumerates the gate library. The diagnosis algorithm of the paper
// considers NOT, BUF, AND, NAND, OR and NOR; XOR and XNOR are supported by
// the simulator but, following the paper, generated circuits build XOR
// functions out of NAND/NOR structures. Const0/Const1 exist so that stuck-at
// corrections can be materialized structurally.
type GateType uint8

// Gate types. Input marks a primary input pseudo-gate; DFF marks a state
// element (D flip-flop) in sequential circuits.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	DFF
	numGateTypes
)

var gateNames = [...]string{
	Input:  "INPUT",
	Const0: "CONST0",
	Const1: "CONST1",
	Buf:    "BUF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	DFF:    "DFF",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// Valid reports whether t is one of the defined gate types.
func (t GateType) Valid() bool { return t < numGateTypes }

// MinFanin returns the minimum legal number of fanins for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal number of fanins for the type, or -1
// when unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return -1
	}
}

// HasControlling reports whether the gate type has a controlling input value
// (AND/NAND control on 0, OR/NOR control on 1). Following the paper's
// convention, BUF and NOT inputs always count as controlling.
func (t GateType) HasControlling() bool {
	switch t {
	case And, Nand, Or, Nor, Buf, Not:
		return true
	}
	return false
}

// ControllingValue returns the controlling input value of the type and
// whether one exists. For BUF/NOT every value is controlling; the returned
// value is unused in that case and ok is still true.
func (t GateType) ControllingValue() (v bool, ok bool) {
	switch t {
	case And, Nand:
		return false, true
	case Or, Nor:
		return true, true
	case Buf, Not:
		return false, true
	}
	return false, false
}

// Inverting reports whether the gate type inverts its "natural" AND/OR core
// (NAND, NOR, NOT, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// InversionOf returns the gate type computing the complement function, and
// whether such a type exists in the library.
func (t GateType) InversionOf() (GateType, bool) {
	switch t {
	case Buf:
		return Not, true
	case Not:
		return Buf, true
	case And:
		return Nand, true
	case Nand:
		return And, true
	case Or:
		return Nor, true
	case Nor:
		return Or, true
	case Xor:
		return Xnor, true
	case Xnor:
		return Xor, true
	case Const0:
		return Const1, true
	case Const1:
		return Const0, true
	}
	return t, false
}

// Line identifies a net: the output of the gate with the same index.
type Line int32

// NoLine is the invalid line sentinel.
const NoLine Line = -1

// Gate is a single netlist node. Fanin lists the lines feeding the gate,
// in pin order. Name is optional and used by the .bench reader/writer.
type Gate struct {
	Type  GateType
	Fanin []Line
	Name  string
}

// Circuit is a gate-level netlist. The zero value is an empty circuit ready
// for AddGate calls. Derived structures (fanout, levels, topological order)
// are built lazily and invalidated by mutation.
type Circuit struct {
	Gates []Gate
	PIs   []Line
	POs   []Line

	// Lazily derived; nil when stale.
	fanout [][]Line
	level  []int32
	topo   []Line
}

// New returns an empty circuit with capacity hints.
func New(gateCap int) *Circuit {
	return &Circuit{Gates: make([]Gate, 0, gateCap)}
}

// NumGates returns the number of gates including primary-input pseudo-gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumLines is an alias of NumGates: every gate drives exactly one stem line.
func (c *Circuit) NumLines() int { return len(c.Gates) }

// AddGate appends a gate and returns its output line. Derived data is
// invalidated.
func (c *Circuit) AddGate(t GateType, fanin ...Line) Line {
	c.invalidate()
	c.Gates = append(c.Gates, Gate{Type: t, Fanin: fanin})
	l := Line(len(c.Gates) - 1)
	if t == Input {
		c.PIs = append(c.PIs, l)
	}
	return l
}

// AddNamedGate appends a gate with a symbolic name and returns its line.
func (c *Circuit) AddNamedGate(name string, t GateType, fanin ...Line) Line {
	l := c.AddGate(t, fanin...)
	c.Gates[l].Name = name
	return l
}

// AddPI appends a primary input with the given name.
func (c *Circuit) AddPI(name string) Line { return c.AddNamedGate(name, Input) }

// MarkPO records line l as a primary output. A line may be marked at most
// once; duplicate marks are ignored.
func (c *Circuit) MarkPO(l Line) {
	for _, p := range c.POs {
		if p == l {
			return
		}
	}
	c.POs = append(c.POs, l)
}

// Type returns the gate type driving line l.
func (c *Circuit) Type(l Line) GateType { return c.Gates[l].Type }

// Fanin returns the fanin slice of the gate driving line l. The caller must
// not mutate it; use SetFanin and friends.
func (c *Circuit) Fanin(l Line) []Line { return c.Gates[l].Fanin }

// Name returns the symbolic name of line l, or a synthetic "n<idx>" when the
// gate is unnamed.
func (c *Circuit) Name(l Line) string {
	if n := c.Gates[l].Name; n != "" {
		return n
	}
	return fmt.Sprintf("n%d", int(l))
}

// SetType changes the gate type of line l, invalidating derived data.
func (c *Circuit) SetType(l Line, t GateType) {
	c.invalidate()
	c.Gates[l].Type = t
}

// SetFanin replaces pin p of the gate driving l with src.
func (c *Circuit) SetFanin(l Line, p int, src Line) {
	c.invalidate()
	c.Gates[l].Fanin[p] = src
}

// AppendFanin adds src as a new last pin of the gate driving l.
func (c *Circuit) AppendFanin(l Line, src Line) {
	c.invalidate()
	c.Gates[l].Fanin = append(c.Gates[l].Fanin, src)
}

// RemoveFanin deletes pin p of the gate driving l, preserving pin order.
func (c *Circuit) RemoveFanin(l Line, p int) {
	c.invalidate()
	f := c.Gates[l].Fanin
	c.Gates[l].Fanin = append(f[:p:p], f[p+1:]...)
}

func (c *Circuit) invalidate() {
	c.fanout = nil
	c.level = nil
	c.topo = nil
}

// Clone returns a deep structural copy of the circuit. Derived data is not
// copied and will be rebuilt on demand.
func (c *Circuit) Clone() *Circuit {
	nc := &Circuit{
		Gates: make([]Gate, len(c.Gates)),
		PIs:   append([]Line(nil), c.PIs...),
		POs:   append([]Line(nil), c.POs...),
	}
	for i, g := range c.Gates {
		nc.Gates[i] = Gate{Type: g.Type, Fanin: append([]Line(nil), g.Fanin...), Name: g.Name}
	}
	return nc
}

// Fanout returns, for every line, the list of lines whose gate reads it.
// A reader appearing on k pins is listed k times. The result is cached.
func (c *Circuit) Fanout() [][]Line {
	if c.fanout != nil {
		return c.fanout
	}
	fo := make([][]Line, len(c.Gates))
	cnt := make([]int32, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			cnt[f]++
		}
	}
	buf := make([]Line, 0, total(cnt))
	for l := range fo {
		n := cnt[l]
		fo[l] = buf[len(buf) : len(buf) : len(buf)+int(n)]
		buf = buf[:len(buf)+int(n)]
	}
	for i, g := range c.Gates {
		for _, f := range g.Fanin {
			fo[f] = append(fo[f], Line(i))
		}
	}
	c.fanout = fo
	return fo
}

func total(cnt []int32) int {
	t := 0
	for _, v := range cnt {
		t += int(v)
	}
	return t
}

// FanoutCount returns the number of gate pins reading line l.
func (c *Circuit) FanoutCount(l Line) int { return len(c.Fanout()[l]) }

// Topo returns a topological order of all lines (fanins before readers).
// The order is deterministic: among ready gates, lower indices first.
// Topo panics if the netlist contains any cycle; DFF gates do not break
// cycles here (package scan must be used first for sequential circuits
// with feedback). Boundary code that may face untrusted netlists should
// call TopoChecked (or Validate) first and surface the error instead.
func (c *Circuit) Topo() []Line {
	order, err := c.TopoChecked()
	if err != nil {
		panic("circuit: " + err.Error())
	}
	return order
}

// TopoChecked is Topo with an error return: on a cyclic netlist it reports
// a wrapped ErrCombinationalCycle instead of panicking. The successful
// result is cached exactly like Topo's.
func (c *Circuit) TopoChecked() ([]Line, error) {
	if c.topo != nil {
		return c.topo, nil
	}
	n := len(c.Gates)
	indeg := make([]int32, n)
	for i := range c.Gates {
		indeg[i] = int32(len(c.Gates[i].Fanin))
	}
	order := make([]Line, 0, n)
	ready := make([]Line, 0, n)
	for i := range c.Gates {
		if indeg[i] == 0 {
			ready = append(ready, Line(i))
		}
	}
	fo := c.Fanout()
	for len(ready) > 0 {
		// Pop the smallest index for determinism. ready is kept sorted by
		// construction: initial fill is ascending and we push in index order
		// per wave; a heap would be overkill for the circuit sizes used.
		l := ready[0]
		ready = ready[1:]
		order = append(order, l)
		for _, r := range fo[l] {
			indeg[r]--
			if indeg[r] == 0 {
				ready = insertSorted(ready, r)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCombinationalCycle
	}
	c.topo = order
	return order, nil
}

func insertSorted(s []Line, v Line) []Line {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Levels returns the logic level of every line: PIs/consts at level 0, every
// other gate at 1 + max(level of fanins). The result is cached.
func (c *Circuit) Levels() []int32 {
	if c.level != nil {
		return c.level
	}
	lv := make([]int32, len(c.Gates))
	for _, l := range c.Topo() {
		m := int32(-1)
		for _, f := range c.Gates[l].Fanin {
			if lv[f] > m {
				m = lv[f]
			}
		}
		lv[l] = m + 1
	}
	c.level = lv
	return lv
}

// Depth returns the maximum logic level in the circuit.
func (c *Circuit) Depth() int32 {
	d := int32(0)
	for _, v := range c.Levels() {
		if v > d {
			d = v
		}
	}
	return d
}

// FanoutCone returns the set of lines reachable from l (inclusive),
// i.e. every line whose value can change when l changes, in topological
// order.
func (c *Circuit) FanoutCone(l Line) []Line {
	fo := c.Fanout()
	seen := make(map[Line]bool, 64)
	seen[l] = true
	stack := []Line{l}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range fo[x] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	cone := make([]Line, 0, len(seen))
	for _, t := range c.Topo() {
		if seen[t] {
			cone = append(cone, t)
		}
	}
	return cone
}

// FaninCone returns the transitive fanin of l (inclusive) in topological
// order.
func (c *Circuit) FaninCone(l Line) []Line {
	seen := make(map[Line]bool, 64)
	seen[l] = true
	stack := []Line{l}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[x].Fanin {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	cone := make([]Line, 0, len(seen))
	for _, t := range c.Topo() {
		if seen[t] {
			cone = append(cone, t)
		}
	}
	return cone
}

// ConeOutputs returns the primary outputs reachable from l.
func (c *Circuit) ConeOutputs(l Line) []Line {
	inCone := make(map[Line]bool)
	for _, x := range c.FanoutCone(l) {
		inCone[x] = true
	}
	var pos []Line
	for _, po := range c.POs {
		if inCone[po] {
			pos = append(pos, po)
		}
	}
	return pos
}

// LineCount returns the ISCAS-style line count used in the paper's tables:
// one line per gate output (stem) plus one line per fanout branch whenever a
// stem feeds more than one gate pin.
func (c *Circuit) LineCount() int {
	fo := c.Fanout()
	n := 0
	for l := range c.Gates {
		n++ // stem
		if len(fo[l]) > 1 {
			n += len(fo[l]) // branches
		}
	}
	return n
}

// Validate checks structural well-formedness: fanin arities legal for the
// gate type, fanin references in range and acyclic, POs in range, PIs are
// exactly the Input gates. Failures wrap ErrInvalidNetlist (or
// ErrCombinationalCycle for loops) for errors.Is classification.
func (c *Circuit) Validate() error {
	piSet := make(map[Line]bool, len(c.PIs))
	for _, p := range c.PIs {
		piSet[p] = true
	}
	for i, g := range c.Gates {
		if !g.Type.Valid() {
			return fmt.Errorf("circuit: gate %d has invalid type %d: %w", i, g.Type, ErrInvalidNetlist)
		}
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return fmt.Errorf("circuit: gate %d (%s) has %d fanins, need at least %d: %w", i, g.Type, len(g.Fanin), min, ErrInvalidNetlist)
		}
		if max := g.Type.MaxFanin(); max >= 0 && len(g.Fanin) > max {
			return fmt.Errorf("circuit: gate %d (%s) has %d fanins, allows at most %d: %w", i, g.Type, len(g.Fanin), max, ErrInvalidNetlist)
		}
		if (g.Type == Input) != piSet[Line(i)] {
			return fmt.Errorf("circuit: gate %d PI membership inconsistent: %w", i, ErrInvalidNetlist)
		}
		for p, f := range g.Fanin {
			if f < 0 || int(f) >= len(c.Gates) {
				return fmt.Errorf("circuit: gate %d pin %d references out-of-range line %d: %w", i, p, f, ErrInvalidNetlist)
			}
		}
	}
	for _, po := range c.POs {
		if po < 0 || int(po) >= len(c.Gates) {
			return fmt.Errorf("circuit: PO references out-of-range line %d: %w", po, ErrInvalidNetlist)
		}
	}
	// Cycles are illegal unless broken by a DFF: sequential circuits with
	// state feedback are valid netlists (package scan gives them
	// combinational meaning), purely combinational loops are not.
	if c.hasCombinationalCycle() {
		return fmt.Errorf("circuit: %w", ErrCombinationalCycle)
	}
	return nil
}

// hasCombinationalCycle runs Kahn's algorithm on the circuit with DFF fanin
// edges removed; any unprocessed gate indicates a cycle not broken by state.
func (c *Circuit) hasCombinationalCycle() bool {
	n := len(c.Gates)
	indeg := make([]int32, n)
	for i := range c.Gates {
		if c.Gates[i].Type == DFF {
			continue
		}
		indeg[i] = int32(len(c.Gates[i].Fanin))
	}
	queue := make([]Line, 0, n)
	for i := range c.Gates {
		if indeg[i] == 0 {
			queue = append(queue, Line(i))
		}
	}
	done := 0
	for len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, r := range c.Fanout()[l] {
			if c.Gates[r].Type == DFF {
				continue
			}
			indeg[r]--
			if indeg[r] == 0 {
				queue = append(queue, r)
			}
		}
	}
	return done != n
}

// Stats summarises a circuit for reporting.
type Stats struct {
	Gates  int // all gates including PI pseudo-gates
	PIs    int
	POs    int
	Lines  int // ISCAS-style stems + branches
	Levels int32
	DFFs   int
}

// Stats computes summary statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates: len(c.Gates),
		PIs:   len(c.PIs),
		POs:   len(c.POs),
		Lines: c.LineCount(),
	}
	s.Levels = c.Depth()
	for _, g := range c.Gates {
		if g.Type == DFF {
			s.DFFs++
		}
	}
	return s
}

// IsSequential reports whether the circuit contains any DFF.
func (c *Circuit) IsSequential() bool {
	for _, g := range c.Gates {
		if g.Type == DFF {
			return true
		}
	}
	return false
}
