package circuit

// StructuralEqual reports whether two circuits are identical up to gate
// indices: same gate count, same types, same fanin connections (by index and
// pin order), same PI and PO lists. Names are ignored so that generated and
// parsed circuits can be compared.
func StructuralEqual(a, b *Circuit) bool {
	if len(a.Gates) != len(b.Gates) || len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return false
	}
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			return false
		}
		for p := range ga.Fanin {
			if ga.Fanin[p] != gb.Fanin[p] {
				return false
			}
		}
	}
	for i := range a.PIs {
		if a.PIs[i] != b.PIs[i] {
			return false
		}
	}
	for i := range a.POs {
		if a.POs[i] != b.POs[i] {
			return false
		}
	}
	return true
}

// NameEqual reports whether two circuits have the same named structure: the
// gates are matched by name rather than index. It is the right comparison
// after a .bench round trip, where gate ordering may legally differ.
func NameEqual(a, b *Circuit) bool {
	if len(a.Gates) != len(b.Gates) || len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return false
	}
	bByName := make(map[string]Line, len(b.Gates))
	for i := range b.Gates {
		bByName[b.Name(Line(i))] = Line(i)
	}
	for i := range a.Gates {
		bl, ok := bByName[a.Name(Line(i))]
		if !ok {
			return false
		}
		ga, gb := a.Gates[i], b.Gates[bl]
		if ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			return false
		}
		for p := range ga.Fanin {
			if b.Name(gb.Fanin[p]) != a.Name(ga.Fanin[p]) {
				return false
			}
		}
	}
	poSet := make(map[string]bool, len(b.POs))
	for _, po := range b.POs {
		poSet[b.Name(po)] = true
	}
	for _, po := range a.POs {
		if !poSet[a.Name(po)] {
			return false
		}
	}
	return true
}
