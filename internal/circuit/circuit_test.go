package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSmall returns the two-error example circuit shape of the paper's
// Fig. 1: two lines merging in a gate G.
func buildSmall(t *testing.T) (*Circuit, Line, Line, Line) {
	t.Helper()
	c := New(8)
	a := c.AddPI("a")
	b := c.AddPI("b")
	d := c.AddPI("d")
	l1 := c.AddNamedGate("l1", And, a, b)
	l2 := c.AddNamedGate("l2", Or, b, d)
	g := c.AddNamedGate("G", Nand, l1, l2)
	c.MarkPO(g)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return c, l1, l2, g
}

func TestAddGateAssignsSequentialLines(t *testing.T) {
	c := New(4)
	if got := c.AddPI("x"); got != 0 {
		t.Fatalf("first line = %d, want 0", got)
	}
	if got := c.AddPI("y"); got != 1 {
		t.Fatalf("second line = %d, want 1", got)
	}
	if got := c.AddGate(And, 0, 1); got != 2 {
		t.Fatalf("third line = %d, want 2", got)
	}
	if len(c.PIs) != 2 {
		t.Fatalf("PIs = %v, want 2 entries", c.PIs)
	}
}

func TestMarkPODeduplicates(t *testing.T) {
	c := New(2)
	x := c.AddPI("x")
	c.MarkPO(x)
	c.MarkPO(x)
	if len(c.POs) != 1 {
		t.Fatalf("POs = %v, want a single entry", c.POs)
	}
}

func TestTopoRespectsDependencies(t *testing.T) {
	c, _, _, _ := buildSmall(t)
	pos := make(map[Line]int)
	for i, l := range c.Topo() {
		pos[l] = i
	}
	for i, g := range c.Gates {
		for _, f := range g.Fanin {
			if pos[f] >= pos[Line(i)] {
				t.Fatalf("fanin %d not before gate %d in topo order", f, i)
			}
		}
	}
}

func TestTopoDeterministic(t *testing.T) {
	c, _, _, _ := buildSmall(t)
	a := append([]Line(nil), c.Topo()...)
	c.invalidate()
	b := c.Topo()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("topo order not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestLevels(t *testing.T) {
	c, l1, l2, g := buildSmall(t)
	lv := c.Levels()
	for _, pi := range c.PIs {
		if lv[pi] != 0 {
			t.Fatalf("PI level = %d, want 0", lv[pi])
		}
	}
	if lv[l1] != 1 || lv[l2] != 1 {
		t.Fatalf("internal levels = %d,%d, want 1,1", lv[l1], lv[l2])
	}
	if lv[g] != 2 {
		t.Fatalf("output level = %d, want 2", lv[g])
	}
	if c.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", c.Depth())
	}
}

func TestFanout(t *testing.T) {
	c, l1, l2, g := buildSmall(t)
	fo := c.Fanout()
	// b feeds both l1 and l2.
	b := c.PIs[1]
	if len(fo[b]) != 2 {
		t.Fatalf("fanout(b) = %v, want 2 readers", fo[b])
	}
	if len(fo[l1]) != 1 || fo[l1][0] != g {
		t.Fatalf("fanout(l1) = %v, want [G]", fo[l1])
	}
	if len(fo[l2]) != 1 || fo[l2][0] != g {
		t.Fatalf("fanout(l2) = %v, want [G]", fo[l2])
	}
	if len(fo[g]) != 0 {
		t.Fatalf("fanout(G) = %v, want none", fo[g])
	}
}

func TestFanoutCountsDuplicatePins(t *testing.T) {
	c := New(2)
	x := c.AddPI("x")
	g := c.AddGate(And, x, x)
	c.MarkPO(g)
	if got := c.FanoutCount(x); got != 2 {
		t.Fatalf("FanoutCount = %d, want 2 (one per pin)", got)
	}
}

func TestFanoutCone(t *testing.T) {
	c, l1, _, g := buildSmall(t)
	cone := c.FanoutCone(l1)
	if len(cone) != 2 || cone[0] != l1 || cone[1] != g {
		t.Fatalf("FanoutCone(l1) = %v, want [l1 G]", cone)
	}
	b := c.PIs[1]
	cone = c.FanoutCone(b)
	if len(cone) != 4 {
		t.Fatalf("FanoutCone(b) = %v, want 4 lines", cone)
	}
}

func TestFaninCone(t *testing.T) {
	c, l1, _, g := buildSmall(t)
	cone := c.FaninCone(g)
	if len(cone) != 6 {
		t.Fatalf("FaninCone(G) = %v, want all 6 lines", cone)
	}
	cone = c.FaninCone(l1)
	if len(cone) != 3 {
		t.Fatalf("FaninCone(l1) = %v, want [a b l1]", cone)
	}
}

func TestConeOutputs(t *testing.T) {
	c, l1, _, g := buildSmall(t)
	pos := c.ConeOutputs(l1)
	if len(pos) != 1 || pos[0] != g {
		t.Fatalf("ConeOutputs(l1) = %v, want [G]", pos)
	}
}

func TestLineCount(t *testing.T) {
	c, _, _, _ := buildSmall(t)
	// Stems: 6. Only b fans out to 2 pins, contributing 2 branch lines.
	if got := c.LineCount(); got != 8 {
		t.Fatalf("LineCount = %d, want 8", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c, l1, _, _ := buildSmall(t)
	nc := c.Clone()
	if !StructuralEqual(c, nc) {
		t.Fatal("clone not structurally equal")
	}
	nc.SetType(l1, Or)
	if c.Type(l1) == Or {
		t.Fatal("mutating clone affected original type")
	}
	nc.SetFanin(l1, 0, nc.PIs[2])
	if c.Fanin(l1)[0] == c.PIs[2] {
		t.Fatal("mutating clone affected original fanin")
	}
}

func TestMutatorsInvalidateDerivedData(t *testing.T) {
	c, l1, _, g := buildSmall(t)
	_ = c.Topo()
	_ = c.Levels()
	c.AppendFanin(g, c.PIs[0])
	if got := len(c.Fanout()[c.PIs[0]]); got != 2 {
		t.Fatalf("fanout after AppendFanin = %d, want 2", got)
	}
	c.RemoveFanin(g, 2)
	if got := len(c.Fanout()[c.PIs[0]]); got != 1 {
		t.Fatalf("fanout after RemoveFanin = %d, want 1", got)
	}
	_ = l1
}

func TestValidateCatchesBadArity(t *testing.T) {
	c := New(2)
	x := c.AddPI("x")
	g := c.AddGate(And, x) // AND with a single input is illegal
	c.MarkPO(g)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted a 1-input AND")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	c := New(3)
	x := c.AddPI("x")
	g1 := c.AddGate(And, x, x) // placeholder fanin, patched below
	g2 := c.AddGate(Or, g1, x)
	c.Gates[g1].Fanin[1] = g2 // creates a cycle g1 -> g2 -> g1
	c.MarkPO(g2)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted a cyclic netlist")
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	c := New(2)
	x := c.AddPI("x")
	g := c.AddGate(Buf, x)
	c.Gates[g].Fanin[0] = 99
	c.MarkPO(g)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range fanin")
	}
}

func TestGateTypeProperties(t *testing.T) {
	cases := []struct {
		t      GateType
		ctrl   bool
		ctrlV  bool
		invert bool
	}{
		{And, true, false, false},
		{Nand, true, false, true},
		{Or, true, true, false},
		{Nor, true, true, true},
		{Buf, true, false, false},
		{Not, true, false, true},
		{Xor, false, false, false},
		{Xnor, false, false, true},
	}
	for _, tc := range cases {
		v, ok := tc.t.ControllingValue()
		if ok != tc.ctrl {
			t.Errorf("%s: HasControlling = %v, want %v", tc.t, ok, tc.ctrl)
		}
		if ok && tc.t != Buf && tc.t != Not && v != tc.ctrlV {
			t.Errorf("%s: controlling value = %v, want %v", tc.t, v, tc.ctrlV)
		}
		if tc.t.Inverting() != tc.invert {
			t.Errorf("%s: Inverting = %v, want %v", tc.t, tc.t.Inverting(), tc.invert)
		}
	}
}

func TestInversionOfIsInvolution(t *testing.T) {
	for tt := GateType(0); tt < numGateTypes; tt++ {
		inv, ok := tt.InversionOf()
		if !ok {
			continue
		}
		back, ok2 := inv.InversionOf()
		if !ok2 || back != tt {
			t.Errorf("%s: inversion not an involution (got %s -> %s)", tt, inv, back)
		}
	}
}

func TestStats(t *testing.T) {
	c, _, _, _ := buildSmall(t)
	s := c.Stats()
	if s.Gates != 6 || s.PIs != 3 || s.POs != 1 || s.Lines != 8 || s.Levels != 2 || s.DFFs != 0 {
		t.Fatalf("Stats = %+v", s)
	}
	if c.IsSequential() {
		t.Fatal("combinational circuit reported sequential")
	}
}

func TestSequentialDetection(t *testing.T) {
	c := New(3)
	x := c.AddPI("x")
	d := c.AddGate(DFF, x)
	c.MarkPO(d)
	if !c.IsSequential() {
		t.Fatal("DFF circuit not reported sequential")
	}
	if c.Stats().DFFs != 1 {
		t.Fatalf("DFFs = %d, want 1", c.Stats().DFFs)
	}
}

// randomDAG builds a random valid combinational circuit for property tests.
func randomDAG(rng *rand.Rand, nPI, nGate int) *Circuit {
	c := New(nPI + nGate)
	for i := 0; i < nPI; i++ {
		c.AddPI("")
	}
	types := []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}
	for i := 0; i < nGate; i++ {
		tt := types[rng.Intn(len(types))]
		n := tt.MinFanin()
		if tt.MaxFanin() < 0 {
			n += rng.Intn(3)
		}
		fanin := make([]Line, n)
		for j := range fanin {
			fanin[j] = Line(rng.Intn(len(c.Gates)))
		}
		c.AddGate(tt, fanin...)
	}
	// Mark all sink lines as POs so nothing dangles.
	fo := c.Fanout()
	for l := range c.Gates {
		if len(fo[l]) == 0 {
			c.MarkPO(Line(l))
		}
	}
	return c
}

func TestRandomDAGsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		c := randomDAG(rng, 2+rng.Intn(6), 1+rng.Intn(40))
		if err := c.Validate(); err != nil {
			t.Fatalf("random DAG %d invalid: %v", i, err)
		}
	}
}

func TestPropertyTopoIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng, 3, 30)
		topo := c.Topo()
		if len(topo) != c.NumLines() {
			return false
		}
		seen := make(map[Line]bool)
		for _, l := range topo {
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLevelsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng, 3, 30)
		lv := c.Levels()
		for i, g := range c.Gates {
			for _, fin := range g.Fanin {
				if lv[fin] >= lv[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyConesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomDAG(rng, 3, 25)
		l := Line(rng.Intn(c.NumLines()))
		// l is in the fanin cone of x iff x is in the fanout cone of l.
		inFanout := make(map[Line]bool)
		for _, x := range c.FanoutCone(l) {
			inFanout[x] = true
		}
		for x := Line(0); int(x) < c.NumLines(); x++ {
			inFanin := false
			for _, y := range c.FaninCone(x) {
				if y == l {
					inFanin = true
					break
				}
			}
			if inFanin != inFanout[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNameFallback(t *testing.T) {
	c := New(1)
	l := c.AddGate(Input)
	c.PIs = c.PIs[:1]
	if got := c.Name(l); got != "n0" {
		t.Fatalf("Name = %q, want n0", got)
	}
	c.Gates[l].Name = "alpha"
	if got := c.Name(l); got != "alpha" {
		t.Fatalf("Name = %q, want alpha", got)
	}
}

func TestStructuralEqualDetectsDifferences(t *testing.T) {
	a, l1, _, _ := buildSmall(t)
	b := a.Clone()
	if !StructuralEqual(a, b) {
		t.Fatal("identical clones reported unequal")
	}
	b.SetType(l1, Or)
	if StructuralEqual(a, b) {
		t.Fatal("type change not detected")
	}
	b = a.Clone()
	b.SetFanin(l1, 0, b.PIs[2])
	if StructuralEqual(a, b) {
		t.Fatal("fanin change not detected")
	}
}
