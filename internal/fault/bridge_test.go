package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func TestCheckBridgeRejections(t *testing.T) {
	c := circuit.New(8)
	a := c.AddPI("a")
	b := c.AddPI("b")
	k := c.AddGate(circuit.Const1)
	g1 := c.AddGate(circuit.And, a, b)
	g2 := c.AddGate(circuit.Or, g1, k)
	c.MarkPO(g2)
	cases := []struct {
		name string
		br   Bridge
	}{
		{"self", Bridge{A: a, B: a}},
		{"const", Bridge{A: a, B: k}},
		{"feedback forward", Bridge{A: g1, B: g2}},
		{"feedback backward", Bridge{A: g2, B: g1}},
		{"feedback from PI", Bridge{A: a, B: g1}},
		{"out of range", Bridge{A: a, B: 99}},
	}
	for _, tc := range cases {
		if err := CheckBridge(c, tc.br); err == nil {
			t.Errorf("%s: accepted %v", tc.name, tc.br)
		}
	}
	// Two independent PIs are bridgeable.
	if err := CheckBridge(c, Bridge{A: a, B: b}); err != nil {
		t.Fatalf("legal bridge rejected: %v", err)
	}
}

func TestInjectBridgeWiredAnd(t *testing.T) {
	// out1 = BUF(a), out2 = BUF(b); bridging a,b wired-AND makes both
	// outputs a AND b.
	c := circuit.New(6)
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.MarkPO(c.AddGate(circuit.Buf, a))
	c.MarkPO(c.AddGate(circuit.Buf, b))
	fc, err := InjectBridge(c, Bridge{A: a, B: b, Kind: WiredAnd})
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	pi, n, _ := sim.ExhaustivePatterns(2)
	val := sim.Simulate(fc, pi, n)
	for _, po := range fc.POs {
		if val[po][0]&0xf != 0b1000 {
			t.Fatalf("PO under wired-AND = %04b, want 1000", val[po][0]&0xf)
		}
	}
}

func TestInjectBridgeWiredOrPOs(t *testing.T) {
	// Bridged nets that are POs themselves must expose the wired value.
	c := circuit.New(6)
	a := c.AddPI("a")
	b := c.AddPI("b")
	c.MarkPO(a)
	c.MarkPO(b)
	fc, err := InjectBridge(c, Bridge{A: a, B: b, Kind: WiredOr})
	if err != nil {
		t.Fatal(err)
	}
	pi, n, _ := sim.ExhaustivePatterns(2)
	val := sim.Simulate(fc, pi, n)
	for _, po := range fc.POs {
		if val[po][0]&0xf != 0b1110 {
			t.Fatalf("PO under wired-OR = %04b, want 1110", val[po][0]&0xf)
		}
	}
}

func TestBridgeTrialMatchesInjection(t *testing.T) {
	// Forcing the wired rows onto both nets with TrialMulti must reproduce
	// the injected bridge's primary output behaviour exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := gen.Random(gen.RandomOptions{PIs: 6, Gates: 40, Seed: seed})
		n := 192
		pi := sim.RandomPatterns(len(c.PIs), n, rng.Int63())
		e := sim.NewEngine(c, pi, n)
		for tries := 0; tries < 20; tries++ {
			br := Bridge{
				A:    circuit.Line(rng.Intn(c.NumLines())),
				B:    circuit.Line(rng.Intn(c.NumLines())),
				Kind: BridgeKind(rng.Intn(2)),
			}
			if CheckBridge(c, br) != nil {
				continue
			}
			wired := br.BridgeValues(e.BaseVal(br.A), e.BaseVal(br.B), e.W)
			e.TrialMulti([]circuit.Line{br.A, br.B}, [][]uint64{wired, wired})
			fc, err := InjectBridge(c, br)
			if err != nil {
				return false
			}
			ref := sim.Simulate(fc, pi, n)
			for i, po := range c.POs {
				if !sim.EqualRows(e.TrialVal(po), ref[fc.POs[i]], n) {
					return false
				}
			}
			return true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeCanon(t *testing.T) {
	b := Bridge{A: 7, B: 3, Kind: WiredOr}.Canon()
	if b.A != 3 || b.B != 7 {
		t.Fatalf("Canon = %v", b)
	}
}

func TestBridgeValues(t *testing.T) {
	va := []uint64{0b0101}
	vb := []uint64{0b0011}
	if got := (Bridge{Kind: WiredAnd}).BridgeValues(va, vb, 1); got[0] != 0b0001 {
		t.Fatalf("wired-AND = %04b", got[0])
	}
	if got := (Bridge{Kind: WiredOr}).BridgeValues(va, vb, 1); got[0] != 0b0111 {
		t.Fatalf("wired-OR = %04b", got[0])
	}
}
