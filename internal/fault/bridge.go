package fault

import (
	"fmt"

	"dedc/internal/circuit"
)

// BridgeKind selects the wired behaviour of a two-net short.
type BridgeKind uint8

// Bridge kinds: the classic zero-dominant (wired-AND) and one-dominant
// (wired-OR) models.
const (
	WiredAnd BridgeKind = iota
	WiredOr
)

// String names the kind.
func (k BridgeKind) String() string {
	if k == WiredAnd {
		return "wand"
	}
	return "wor"
}

// Bridge is a non-feedback bridging fault between nets A and B: every
// reader of either net observes the wired function of both. The paper lists
// the extension to other physical fault models as future work; bridges are
// the canonical example (its reference [12] is a bridging-fault diagnosis
// paper).
type Bridge struct {
	A, B circuit.Line
	Kind BridgeKind
}

// String renders the bridge, e.g. "wand(L3,L7)".
func (b Bridge) String() string {
	return fmt.Sprintf("%s(L%d,L%d)", b.Kind, int(b.A), int(b.B))
}

// Canon returns the bridge with A < B for set comparisons.
func (b Bridge) Canon() Bridge {
	if b.B < b.A {
		b.A, b.B = b.B, b.A
	}
	return b
}

// gateType returns the wired gate type.
func (b Bridge) gateType() circuit.GateType {
	if b.Kind == WiredAnd {
		return circuit.And
	}
	return circuit.Or
}

// CheckBridge verifies a bridge is injectable: distinct nets, neither
// driven by a constant, and no combinational feedback (neither net in the
// other's fanout cone).
func CheckBridge(c *circuit.Circuit, b Bridge) error {
	if b.A == b.B {
		return fmt.Errorf("fault: bridge requires two distinct nets")
	}
	for _, l := range []circuit.Line{b.A, b.B} {
		if l < 0 || int(l) >= c.NumLines() {
			return fmt.Errorf("fault: bridge net %d out of range", l)
		}
		t := c.Gates[l].Type
		if t == circuit.Const0 || t == circuit.Const1 {
			return fmt.Errorf("fault: cannot bridge a constant net")
		}
	}
	if inCone(c, b.A, b.B) || inCone(c, b.B, b.A) {
		return fmt.Errorf("fault: feedback bridge between L%d and L%d not supported", b.A, b.B)
	}
	return nil
}

func inCone(c *circuit.Circuit, from, to circuit.Line) bool {
	fo := c.Fanout()
	seen := map[circuit.Line]bool{from: true}
	stack := []circuit.Line{from}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range fo[x] {
			if r == to {
				return true
			}
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return false
}

// InjectBridge returns a copy of c with the bridge inserted: a wired
// AND/OR gate reading both nets, with every other reader (and PO slot) of
// either net re-pointed at it.
func InjectBridge(c *circuit.Circuit, b Bridge) (*circuit.Circuit, error) {
	if err := CheckBridge(c, b); err != nil {
		return nil, err
	}
	nc := c.Clone()
	InjectBridgeInto(nc, b)
	return nc, nil
}

// InjectBridgeInto inserts the bridge into c itself (the mutating form used
// when a bridge plays the role of a correction). The caller must have
// validated with CheckBridge.
func InjectBridgeInto(c *circuit.Circuit, b Bridge) {
	w := c.AddGate(b.gateType(), b.A, b.B)
	for i := range c.Gates {
		if circuit.Line(i) == w {
			continue
		}
		for p, f := range c.Gates[i].Fanin {
			if f == b.A || f == b.B {
				c.SetFanin(circuit.Line(i), p, w)
			}
		}
	}
	for i, po := range c.POs {
		if po == b.A || po == b.B {
			c.POs[i] = w
		}
	}
}

// BridgeValues computes the wired value rows both nets present to their
// readers, given the fault-free rows of A and B.
func (b Bridge) BridgeValues(valA, valB []uint64, w int) []uint64 {
	out := make([]uint64, w)
	if b.Kind == WiredAnd {
		for i := 0; i < w; i++ {
			out[i] = valA[i] & valB[i]
		}
	} else {
		for i := 0; i < w; i++ {
			out[i] = valA[i] | valB[i]
		}
	}
	return out
}
