package fault

import (
	"math/rand"

	"dedc/internal/circuit"
	"dedc/internal/sim"
)

// PickObservable draws k distinct-site stuck-at faults whose joint injection
// visibly changes the circuit's behaviour on a shared random vector probe —
// the scenario builder behind cmd/inject and the internal/perf benchmark
// suite. Selection is deterministic in seed. It returns nil when no
// observable combination is found within a bounded number of attempts (k
// larger than the observable site population, or pathological masking).
func PickObservable(c *circuit.Circuit, k int, seed int64) []Fault {
	rng := rand.New(rand.NewSource(seed))
	sites := Sites(c)
	n := 1024
	pi := sim.RandomPatterns(len(c.PIs), n, seed^0x51ab)
	goodOut := sim.Outputs(c, sim.Simulate(c, pi, n))
	for tries := 0; tries < 100; tries++ {
		seen := map[Site]bool{}
		var fs []Fault
		for len(fs) < k {
			s := sites[rng.Intn(len(sites))]
			if seen[s] {
				continue
			}
			seen[s] = true
			fs = append(fs, Fault{Site: s, Value: rng.Intn(2) == 1})
		}
		fc := Inject(c, fs...)
		badOut := sim.Outputs(fc, sim.Simulate(fc, pi, n))
		for _, w := range sim.DiffMask(goodOut, badOut, n) {
			if w != 0 {
				return fs
			}
		}
	}
	return nil
}
