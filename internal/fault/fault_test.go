package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func c17() *circuit.Circuit {
	c := circuit.New(11)
	g1 := c.AddPI("1")
	g2 := c.AddPI("2")
	g3 := c.AddPI("3")
	g6 := c.AddPI("6")
	g7 := c.AddPI("7")
	n10 := c.AddNamedGate("10", circuit.Nand, g1, g3)
	n11 := c.AddNamedGate("11", circuit.Nand, g3, g6)
	n16 := c.AddNamedGate("16", circuit.Nand, g2, n11)
	n19 := c.AddNamedGate("19", circuit.Nand, n11, g7)
	c.MarkPO(c.AddNamedGate("22", circuit.Nand, n10, n16))
	c.MarkPO(c.AddNamedGate("23", circuit.Nand, n16, n19))
	return c
}

func TestSitesEnumeration(t *testing.T) {
	c := c17()
	sites := Sites(c)
	// Stems: 11. Branch sites: stems with fanout > 1 are 3 (feeds 10,11),
	// 11 (feeds 16,19) and 16 (feeds 22,23) — 2 branches each.
	stems, branches := 0, 0
	for _, s := range sites {
		if s.IsStem() {
			stems++
		} else {
			branches++
		}
	}
	if stems != 11 || branches != 6 {
		t.Fatalf("stems=%d branches=%d, want 11/6", stems, branches)
	}
	if got := len(AllFaults(c)); got != 2*len(sites) {
		t.Fatalf("AllFaults = %d, want %d", got, 2*len(sites))
	}
}

func TestSitesSkipConstants(t *testing.T) {
	c := circuit.New(3)
	x := c.AddPI("x")
	k := c.AddGate(circuit.Const1)
	c.MarkPO(c.AddGate(circuit.And, x, k))
	for _, s := range Sites(c) {
		if s.IsStem() && s.Line == k {
			t.Fatal("constant gate enumerated as fault site")
		}
	}
}

func TestInjectStemFault(t *testing.T) {
	c := c17()
	var n10 circuit.Line
	for i := range c.Gates {
		if c.Gates[i].Name == "10" {
			n10 = circuit.Line(i)
		}
	}
	f := Fault{Site: Site{Line: n10, Reader: circuit.NoLine}, Value: false}
	fc := Inject(c, f)
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	// The stem's readers must now see a constant 0.
	reader := fc.Fanin(fc.POs[0])[0]
	if fc.Gates[reader].Type != circuit.Const0 {
		t.Fatalf("reader pin type = %s, want CONST0", fc.Gates[reader].Type)
	}
	// With line 10 stuck at 0, output 22 = NAND(0, x) = 1 always.
	pi, n, _ := sim.ExhaustivePatterns(5)
	val := sim.Simulate(fc, pi, n)
	if got := sim.Popcount(val[fc.POs[0]], n); got != n {
		t.Fatalf("PO 22 should be constant 1 under 10/0, got %d of %d ones", got, n)
	}
}

func TestInjectBranchFaultAffectsOnlyOneReader(t *testing.T) {
	c := c17()
	// Fault the branch of line 11 feeding gate 16 only: gate 19 still sees
	// the true value of 11.
	var n11, n16 circuit.Line
	for i := range c.Gates {
		switch c.Gates[i].Name {
		case "11":
			n11 = circuit.Line(i)
		case "16":
			n16 = circuit.Line(i)
		}
	}
	f := Fault{Site: Site{Line: n11, Reader: n16, Pin: 1}, Value: true}
	fc := Inject(c, f)
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	pi, n, _ := sim.ExhaustivePatterns(5)
	vg := sim.Simulate(c, pi, n)
	vf := sim.Simulate(fc, pi, n)
	// Line 11 itself keeps its fault-free values in the faulty copy.
	if !sim.EqualRows(vg[n11], vf[n11], n) {
		t.Fatal("branch fault altered the stem value")
	}
	// Gate 16 now computes NAND(2, 1) — differs somewhere.
	if sim.EqualRows(vg[n16], vf[n16], n) {
		t.Fatal("branch fault had no effect on the faulted reader")
	}
}

func TestInjectPIFaultKeepsPICompatibility(t *testing.T) {
	c := c17()
	f := Fault{Site: Site{Line: c.PIs[2], Reader: circuit.NoLine}, Value: true}
	fc := Inject(c, f)
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fc.PIs) != len(c.PIs) {
		t.Fatalf("PI count changed: %d vs %d", len(fc.PIs), len(c.PIs))
	}
	// Behaviour equals forcing PI 3 to 1: compare against simulating the
	// good circuit with that input column overridden.
	pi, n, _ := sim.ExhaustivePatterns(5)
	vf := sim.Simulate(fc, pi, n)
	forced := make([][]uint64, len(pi))
	for i := range pi {
		forced[i] = append([]uint64(nil), pi[i]...)
	}
	for i := range forced[2] {
		forced[2][i] = ^uint64(0)
	}
	vg := sim.Simulate(c, forced, n)
	for i, po := range c.POs {
		if !sim.EqualRows(vg[po], vf[fc.POs[i]], n) {
			t.Fatal("PI stem fault behaviour mismatch")
		}
	}
}

func TestInjectMultipleFaults(t *testing.T) {
	c := c17()
	faults := []Fault{
		{Site: Site{Line: 5, Reader: circuit.NoLine}, Value: false},
		{Site: Site{Line: 7, Reader: circuit.NoLine}, Value: true},
	}
	fc := Inject(c, faults...)
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each faulted stem's readers must have been redirected to constants.
	for _, f := range faults {
		for i := range fc.Gates {
			for _, fin := range fc.Gates[i].Fanin {
				if fin == f.Line {
					t.Fatalf("line %d still read after stem fault injection", f.Line)
				}
			}
		}
	}
	pi, n, _ := sim.ExhaustivePatterns(5)
	good := sim.Outputs(c, sim.Simulate(c, pi, n))
	bad := sim.Outputs(fc, sim.Simulate(fc, pi, n))
	differs := false
	for _, w := range sim.DiffMask(good, bad, n) {
		if w != 0 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("double stem fault unobservable on exhaustive patterns")
	}
}

func TestInjectDoesNotMutateOriginal(t *testing.T) {
	c := c17()
	orig := c.Clone()
	_ = Inject(c, Fault{Site: Site{Line: 6, Reader: circuit.NoLine}, Value: true})
	if !circuit.StructuralEqual(c, orig) {
		t.Fatal("Inject mutated its input circuit")
	}
}

func TestDetectedMatchesInjectionSimulation(t *testing.T) {
	// Property: the trial-based Detected agrees with brute-force inject +
	// compare on every fault.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := gen.Random(gen.RandomOptions{PIs: 6, Gates: 40, Seed: seed})
		n := 128
		pi := sim.RandomPatterns(len(c.PIs), n, rng.Int63())
		faults := AllFaults(c)
		if len(faults) > 60 {
			faults = faults[:60]
		}
		det := Detected(c, faults, pi, n)
		goodOut := sim.Outputs(c, sim.Simulate(c, pi, n))
		for i, ft := range faults {
			fc := Inject(c, ft)
			badOut := sim.Outputs(fc, sim.Simulate(fc, pi, n))
			diff := sim.DiffMask(goodOut, badOut, n)
			brute := false
			for _, wrd := range diff {
				if wrd != 0 {
					brute = true
					break
				}
			}
			if brute != det[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage([]bool{true, false, true, true}); got != 0.75 {
		t.Fatalf("Coverage = %v, want 0.75", got)
	}
	if got := Coverage(nil); got != 0 {
		t.Fatalf("Coverage(nil) = %v, want 0", got)
	}
}

func TestTupleCanonAndKey(t *testing.T) {
	a := Fault{Site: Site{Line: 5, Reader: circuit.NoLine}, Value: true}
	b := Fault{Site: Site{Line: 3, Reader: circuit.NoLine}, Value: false}
	t1 := Tuple{a, b}
	t2 := Tuple{b, a}
	if t1.Key() != t2.Key() {
		t.Fatal("tuple key not order-independent")
	}
	t1.Canon()
	if t1[0].Line != 3 {
		t.Fatal("Canon did not sort by line")
	}
}

func TestDistinctSites(t *testing.T) {
	s1 := Site{Line: 3, Reader: circuit.NoLine}
	s2 := Site{Line: 5, Reader: circuit.NoLine}
	tuples := []Tuple{
		{{Site: s1, Value: true}, {Site: s2, Value: false}},
		{{Site: s1, Value: false}, {Site: s2, Value: false}},
	}
	if got := DistinctSites(tuples); got != 2 {
		t.Fatalf("DistinctSites = %d, want 2", got)
	}
}

func TestCollapseClassesBehaviorallyEquivalent(t *testing.T) {
	// Every member of a collapse class must produce the identical faulty
	// behaviour, not merely both-detected.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		c := gen.Random(gen.RandomOptions{PIs: 5, Gates: 30, Seed: int64(trial) + 100})
		n := 256
		pi := sim.RandomPatterns(len(c.PIs), n, rng.Int63())
		_, class := Collapse(c)
		// Group members by representative.
		groups := map[Fault][]Fault{}
		for f, r := range class {
			groups[r] = append(groups[r], f)
		}
		for rep, members := range groups {
			if len(members) < 2 {
				continue
			}
			repOut := sim.Outputs(nil2(c, rep), sim.Simulate(nil2(c, rep), pi, n))
			for _, m := range members {
				mc := nil2(c, m)
				mOut := sim.Outputs(mc, sim.Simulate(mc, pi, n))
				d := sim.DiffMask(repOut, mOut, n)
				for _, wrd := range d {
					if wrd != 0 {
						t.Fatalf("collapse class of %v: member %v behaves differently", rep, m)
					}
				}
			}
		}
	}
}

func nil2(c *circuit.Circuit, f Fault) *circuit.Circuit { return Inject(c, f) }

func TestCollapseReducesFaultCount(t *testing.T) {
	c := gen.Alu(4)
	all := AllFaults(c)
	reps, class := Collapse(c)
	if len(reps) >= len(all) {
		t.Fatalf("collapse did not reduce: %d reps of %d faults", len(reps), len(all))
	}
	if len(class) != len(all) {
		t.Fatalf("class map covers %d of %d faults", len(class), len(all))
	}
	// Representatives map to themselves.
	for _, r := range reps {
		if class[r] != r {
			t.Fatalf("representative %v maps to %v", r, class[r])
		}
	}
}

func TestCollapseInverterChain(t *testing.T) {
	// x -> NOT -> NOT -> PO: all six stem faults collapse to two classes.
	c := circuit.New(3)
	x := c.AddPI("x")
	n1 := c.AddGate(circuit.Not, x)
	n2 := c.AddGate(circuit.Not, n1)
	c.MarkPO(n2)
	reps, _ := Collapse(c)
	if len(reps) != 2 {
		t.Fatalf("inverter chain collapsed to %d classes, want 2", len(reps))
	}
}
