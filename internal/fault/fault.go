// Package fault implements the single and multiple stuck-at fault model:
// fault sites on stems and fanout branches, structural fault injection (used
// to create the "faulty device" of the experiments), parallel-pattern fault
// simulation with fault dropping, and classical structural equivalence
// collapsing.
package fault

import (
	"fmt"
	"sort"

	"dedc/internal/circuit"
	"dedc/internal/sim"
)

// Site identifies a stuck-at fault location. A stem site is the output net
// of a gate (Reader == circuit.NoLine). A branch site is one pin of a reader
// gate; branch sites exist only where the driving stem has fanout > 1 —
// with a single reader, the branch and the stem are the same electrical
// node.
type Site struct {
	Line   circuit.Line // driven stem line
	Reader circuit.Line // reading gate for a branch site, NoLine for a stem
	Pin    int          // pin index within the reader, 0 for a stem
}

// IsStem reports whether the site is a stem.
func (s Site) IsStem() bool { return s.Reader == circuit.NoLine }

// String renders the site for reports, e.g. "n12" or "n12->n30.1".
func (s Site) String() string {
	if s.IsStem() {
		return fmt.Sprintf("L%d", int(s.Line))
	}
	return fmt.Sprintf("L%d->L%d.%d", int(s.Line), int(s.Reader), s.Pin)
}

// Name renders the site using circuit signal names.
func (s Site) Name(c *circuit.Circuit) string {
	if s.IsStem() {
		return c.Name(s.Line)
	}
	return fmt.Sprintf("%s->%s.%d", c.Name(s.Line), c.Name(s.Reader), s.Pin)
}

// Fault is a stuck-at fault at a site.
type Fault struct {
	Site
	Value bool // stuck-at value: false = s-a-0, true = s-a-1
}

// String renders the fault, e.g. "L12/0".
func (f Fault) String() string {
	v := 0
	if f.Value {
		v = 1
	}
	return fmt.Sprintf("%s/%d", f.Site.String(), v)
}

// Sites enumerates every fault site of the circuit: one stem per gate
// (primary inputs included, constants excluded) plus one branch per pin
// wherever the driving stem feeds more than one pin.
func Sites(c *circuit.Circuit) []Site {
	fo := c.Fanout()
	var sites []Site
	for l := 0; l < c.NumLines(); l++ {
		t := c.Gates[l].Type
		if t == circuit.Const0 || t == circuit.Const1 {
			continue
		}
		sites = append(sites, Site{Line: circuit.Line(l), Reader: circuit.NoLine})
	}
	for i := range c.Gates {
		for p, f := range c.Gates[i].Fanin {
			if len(fo[f]) > 1 {
				sites = append(sites, Site{Line: f, Reader: circuit.Line(i), Pin: p})
			}
		}
	}
	return sites
}

// AllFaults enumerates both polarities on every site.
func AllFaults(c *circuit.Circuit) []Fault {
	sites := Sites(c)
	faults := make([]Fault, 0, 2*len(sites))
	for _, s := range sites {
		faults = append(faults, Fault{Site: s, Value: false}, Fault{Site: s, Value: true})
	}
	return faults
}

// Inject returns a copy of c with the faults inserted structurally: a stem
// fault replaces the driving gate with a constant; a branch fault re-points
// the affected pin at a fresh constant gate. The copy simulates exactly as
// the faulty device would.
func Inject(c *circuit.Circuit, faults ...Fault) *circuit.Circuit {
	nc := c.Clone()
	InjectInto(nc, faults...)
	return nc
}

// InjectInto inserts the faults into c itself (the mutating form used when a
// fault plays the role of a correction during incremental rectification).
func InjectInto(c *circuit.Circuit, faults ...Fault) {
	nc := c
	constType := func(v bool) circuit.GateType {
		if v {
			return circuit.Const1
		}
		return circuit.Const0
	}
	for _, f := range faults {
		if f.IsStem() {
			// The faulted gate stays intact (so PI positions survive and
			// later branch faults on its pins remain injectable); its
			// readers and PO slots are re-pointed at a fresh constant.
			k := nc.AddGate(constType(f.Value))
			redirectReaders(nc, f.Line, k)
		} else {
			k := nc.AddGate(constType(f.Value))
			nc.SetFanin(f.Reader, f.Pin, k)
		}
	}
}

// redirectReaders re-points every pin reading old to new, and replaces old
// in the PO list as well.
func redirectReaders(c *circuit.Circuit, old, new circuit.Line) {
	for i := range c.Gates {
		if circuit.Line(i) == new {
			continue
		}
		for p, f := range c.Gates[i].Fanin {
			if f == old {
				c.SetFanin(circuit.Line(i), p, new)
			}
		}
	}
	for i, po := range c.POs {
		if po == old {
			c.POs[i] = new
		}
	}
}

// Detected runs parallel-pattern fault simulation: for every fault, it
// reports whether any primary output differs from the fault-free response on
// at least one of the n patterns. Event-driven trials keep the cost
// proportional to each fault's sensitized cone.
func Detected(c *circuit.Circuit, faults []Fault, pi [][]uint64, n int) []bool {
	e := sim.NewEngine(c, pi, n)
	isPO := poSet(c)
	det := make([]bool, len(faults))
	w := sim.Words(n)
	zero := make([]uint64, w)
	ones := make([]uint64, w)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	tail := sim.TailMask(n)
	for i, f := range faults {
		row := zero
		if f.Value {
			row = ones
		}
		var changed []circuit.Line
		if f.IsStem() {
			changed = e.Trial(f.Line, row)
		} else {
			g := &c.Gates[f.Reader]
			changed = e.TrialEvalPin(f.Reader, g.Type, g.Fanin, f.Pin, row)
		}
		for _, l := range changed {
			if !isPO[l] {
				continue
			}
			// The engine reports word-granular changes; a real detection
			// needs a differing bit within the first n patterns.
			tv, base := e.TrialVal(l), e.BaseVal(l)
			for j := 0; j < w; j++ {
				d := tv[j] ^ base[j]
				if j == w-1 {
					d &= tail
				}
				if d != 0 {
					det[i] = true
					break
				}
			}
			if det[i] {
				break
			}
		}
	}
	return det
}

// Coverage returns the detected fraction.
func Coverage(det []bool) float64 {
	if len(det) == 0 {
		return 0
	}
	n := 0
	for _, d := range det {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(det))
}

func poSet(c *circuit.Circuit) map[circuit.Line]bool {
	m := make(map[circuit.Line]bool, len(c.POs))
	for _, po := range c.POs {
		m[po] = true
	}
	return m
}

// Tuple is a set of faults proposed to jointly explain a faulty behaviour.
// Tuples are kept sorted by (line, reader, pin, value) so that equal sets
// compare equal.
type Tuple []Fault

// Canon sorts the tuple into canonical order and returns it.
func (t Tuple) Canon() Tuple {
	sort.Slice(t, func(i, j int) bool {
		a, b := t[i], t[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Reader != b.Reader {
			return a.Reader < b.Reader
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.Value && b.Value
	})
	return t
}

// Key returns a canonical string key for set-level deduplication.
func (t Tuple) Key() string {
	t = t.Canon()
	s := ""
	for _, f := range t {
		s += f.String() + ";"
	}
	return s
}

// String renders the tuple.
func (t Tuple) String() string {
	s := "{"
	for i, f := range t {
		if i > 0 {
			s += ", "
		}
		s += f.String()
	}
	return s + "}"
}

// DistinctSites returns the number of distinct fault sites across tuples —
// the "# sites" column of Table 1: the lines a test engineer must probe.
func DistinctSites(tuples []Tuple) int {
	seen := map[Site]bool{}
	for _, t := range tuples {
		for _, f := range t {
			seen[f.Site] = true
		}
	}
	return len(seen)
}
