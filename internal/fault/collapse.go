package fault

import "dedc/internal/circuit"

// Collapse performs classical structural equivalence collapsing over the
// full fault universe of c and returns one representative per equivalence
// class plus the class map. The rules are the textbook ones:
//
//   - BUF/DFF: input s-a-v ≡ output s-a-v; NOT: input s-a-v ≡ output s-a-v̄.
//   - AND: any input s-a-0 ≡ output s-a-0 (NAND: ≡ output s-a-1).
//   - OR: any input s-a-1 ≡ output s-a-1 (NOR: ≡ output s-a-0).
//
// The "input" fault of pin p reading stem f is the branch site (f, g, p)
// when f has fanout > 1 and the stem site of f otherwise — matching the
// site enumeration of Sites.
func Collapse(c *circuit.Circuit) (reps []Fault, class map[Fault]Fault) {
	faults := AllFaults(c)
	idx := make(map[Fault]int, len(faults))
	for i, f := range faults {
		idx[f] = i
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b Fault) {
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			return
		}
		ra, rb := find(ia), find(ib)
		if ra != rb {
			// Prefer the smaller index (earlier site) as representative so
			// results are deterministic.
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	fo := c.Fanout()
	isPO := make(map[circuit.Line]bool, len(c.POs))
	for _, po := range c.POs {
		isPO[po] = true
	}
	inputFault := func(g circuit.Line, pin int, v bool) Fault {
		f := c.Gates[g].Fanin[pin]
		if len(fo[f]) > 1 {
			return Fault{Site: Site{Line: f, Reader: g, Pin: pin}, Value: v}
		}
		if isPO[f] {
			// The stem is directly observable as a primary output, so a
			// fault on it is NOT equivalent to a fault past the reading
			// gate; returning a site outside the fault universe makes the
			// union a no-op.
			return Fault{Site: Site{Line: f, Reader: g, Pin: pin}, Value: v}
		}
		return Fault{Site: Site{Line: f, Reader: circuit.NoLine}, Value: v}
	}
	for i := range c.Gates {
		g := circuit.Line(i)
		t := c.Gates[i].Type
		out := func(v bool) Fault {
			return Fault{Site: Site{Line: g, Reader: circuit.NoLine}, Value: v}
		}
		switch t {
		case circuit.Buf, circuit.DFF:
			union(inputFault(g, 0, false), out(false))
			union(inputFault(g, 0, true), out(true))
		case circuit.Not:
			union(inputFault(g, 0, false), out(true))
			union(inputFault(g, 0, true), out(false))
		case circuit.And, circuit.Nand:
			ov := t == circuit.Nand // input s-a-0 forces output to 0 (AND) / 1 (NAND)
			for p := range c.Gates[i].Fanin {
				union(inputFault(g, p, false), out(ov))
			}
		case circuit.Or, circuit.Nor:
			ov := t != circuit.Nor
			for p := range c.Gates[i].Fanin {
				union(inputFault(g, p, true), out(ov))
			}
		}
	}
	class = make(map[Fault]Fault, len(faults))
	seen := make(map[int]bool)
	for i, f := range faults {
		r := find(i)
		class[f] = faults[r]
		if !seen[r] {
			seen[r] = true
			reps = append(reps, faults[r])
		}
	}
	return reps, class
}
