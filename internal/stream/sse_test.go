package stream

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriterReaderRoundTrip frames events through an httptest pipeline and
// decodes them back, covering IDs, types, multi-line data and heartbeats.
func TestWriterReaderRoundTrip(t *testing.T) {
	sent := []Event{
		{ID: "0", Type: TypeLifecycle, Data: []byte(`{"job":"job-1"}`)},
		{Type: TypeProgress, Data: []byte("line1\nline2")},
		{ID: "1", Data: []byte(`{"terminal":true}`)},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, err := NewWriter(w)
		if err != nil {
			t.Errorf("NewWriter: %v", err)
			return
		}
		if err := sw.Comment("hb"); err != nil {
			t.Errorf("Comment: %v", err)
		}
		for _, e := range sent {
			if err := sw.Send(e); err != nil {
				t.Errorf("Send: %v", err)
			}
		}
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	r := NewReader(resp.Body)
	var got []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != len(sent) {
		t.Fatalf("decoded %d events %+v, want %d", len(got), got, len(sent))
	}
	for i, e := range got {
		if e.ID != sent[i].ID || e.Type != sent[i].Type || string(e.Data) != string(sent[i].Data) {
			t.Errorf("event %d = %+v, want %+v", i, e, sent[i])
		}
	}
	// The reader's LastID sticks across ID-less frames.
	if r.LastID() != "1" {
		t.Errorf("LastID = %q, want 1", r.LastID())
	}
}

// TestReaderFraming feeds hand-written wire text: comments between fields,
// space-less separators, and a trailing unterminated frame that must not be
// delivered.
func TestReaderFraming(t *testing.T) {
	wire := ": keepalive\n\n" +
		"id:7\nevent:lifecycle\ndata:{\"a\":1}\n\n" +
		"data: no-type\n\n" +
		"id: 9\ndata: cut off by a crash" // no terminating blank line
	r := NewReader(strings.NewReader(wire))

	e, err := r.Next()
	if err != nil || e.ID != "7" || e.Type != "lifecycle" || string(e.Data) != `{"a":1}` {
		t.Fatalf("frame 1 = %+v, %v", e, err)
	}
	e, err = r.Next()
	if err != nil || e.ID != "" || e.Type != "" || string(e.Data) != "no-type" {
		t.Fatalf("frame 2 = %+v, %v", e, err)
	}
	if e, err = r.Next(); err != io.EOF {
		t.Fatalf("unterminated tail delivered: %+v, %v", e, err)
	}
	// The cut frame's ID still counts for resume: the SSE contract updates
	// last-event-ID when the field arrives. A client resuming from it simply
	// re-receives that event — IDs reference persisted state, re-delivery of
	// the same index is idempotent for consumers keyed on it.
	if r.LastID() != "9" {
		t.Errorf("LastID = %q, want 9", r.LastID())
	}
}
