package stream

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ErrStop is returned by a Client handler to end Run cleanly: the client has
// seen what it was waiting for (typically a terminal lifecycle frame).
var ErrStop = errors.New("stream: handler stopped")

// Client consumes an SSE endpoint with automatic reconnect-and-resume: every
// (re)connection sends the last seen event ID as Last-Event-ID, which the
// daemon answers by replaying the persisted timeline after that position.
// Used by dedctop's per-job tail and by the chaos harness that kills the
// daemon mid-stream.
type Client struct {
	// URL is the SSE endpoint.
	URL string
	// LastID seeds resume; updated as frames with IDs arrive.
	LastID string
	// HTTP is the client used for requests (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry is the delay between reconnect attempts (default 500ms).
	Retry time.Duration
}

// Run streams events to handle until the handler returns ErrStop (nil), the
// context ends (ctx.Err()), or the server rejects the stream with a
// non-retryable status. Disconnects — clean EOF, mid-frame cuts, 5xx — are
// retried after Retry, resuming from LastID, so a daemon restart is a pause
// rather than an error. A non-nil handler error other than ErrStop aborts
// immediately and is returned.
func (c *Client) Run(ctx context.Context, handle func(Event) error) error {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	retry := c.Retry
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	for {
		err := c.once(ctx, hc, handle)
		if err == nil {
			return nil // handler returned ErrStop
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var fatal *fatalStatusError
		var herr *handlerError
		if errors.As(err, &fatal) {
			return err
		}
		if errors.As(err, &herr) {
			return herr.err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(retry):
		}
	}
}

// fatalStatusError reports a server response that retrying cannot fix
// (404 unknown job, 400 bad resume position, 410 evicted...).
type fatalStatusError struct{ status int }

func (e *fatalStatusError) Error() string {
	return fmt.Sprintf("stream: server rejected the stream: status %d", e.status)
}

// handlerError marks an error raised by the handler (not the connection), so
// Run aborts instead of reconnecting.
type handlerError struct{ err error }

func (e *handlerError) Error() string { return e.err.Error() }

// once runs a single connection until it drops or the handler stops it.
// A nil return means the handler returned ErrStop.
func (c *Client) once(ctx context.Context, hc *http.Client, handle func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if c.LastID != "" {
		req.Header.Set("Last-Event-ID", c.LastID)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			return fmt.Errorf("stream: status %d", resp.StatusCode)
		}
		return &fatalStatusError{status: resp.StatusCode}
	}
	r := NewReader(resp.Body)
	for {
		e, err := r.Next()
		if err != nil {
			return err // io.EOF included: a closed stream reconnects and resumes
		}
		if e.ID != "" {
			c.LastID = e.ID
		}
		if err := handle(e); err != nil {
			if errors.Is(err, ErrStop) {
				return nil
			}
			return &handlerError{err: err}
		}
	}
}
