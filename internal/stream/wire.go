package stream

import "time"

// SSE event types on /v1/jobs/{id}/events. Lifecycle frames carry an "id:"
// field (the timeline index) and drive Last-Event-ID resume; progress and
// solution frames are live-only telemetry teed from the attempt's journal and
// carry no ID — they cannot be replayed after a restart, and a resuming
// client's position always references the persisted timeline.
const (
	TypeLifecycle = "lifecycle"
	TypeProgress  = "progress"
	TypeSolution  = "solution"
)

// Lifecycle is the data payload of a "lifecycle" frame: one persisted
// timeline transition. Index is the entry's position in the job's timeline —
// the frame's SSE ID — and State/Terminal describe the job after the
// transition, so a client needs no state machine of its own.
type Lifecycle struct {
	Job      string    `json:"job"`
	Index    int       `json:"index"`
	Type     string    `json:"type"` // timeline entry type (submitted, claimed, ...)
	TS       time.Time `json:"ts"`
	Attempt  int       `json:"attempt,omitempty"`
	Worker   string    `json:"worker,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	State    string    `json:"state"`
	Terminal bool      `json:"terminal,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// Progress is the data payload of a "progress" frame: one checkpoint of a
// running attempt's diagnosis search, straight from the engine's checkpoint
// callback. SatConflicts is the delta since the attempt started, not the
// process-lifetime counter.
type Progress struct {
	Job          string    `json:"job"`
	Attempt      int       `json:"attempt"`
	Step         int       `json:"step"`
	Round        int       `json:"round"`
	Frontier     int       `json:"frontier"`
	Solutions    int       `json:"solutions"`
	Candidates   int64     `json:"candidates,omitempty"`
	Simulations  int64     `json:"simulations,omitempty"`
	SatConflicts int64     `json:"sat_conflicts,omitempty"`
	TS           time.Time `json:"ts"`
}

// Quantiles summarizes one latency histogram on /v1/stats. Quantile values
// are power-of-two bucket upper bounds, matching telemetry.Histogram.
type Quantiles struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// PoolStats mirrors the supervised pool's counters plus its occupancy.
type PoolStats struct {
	Workers     int   `json:"workers"`
	QueueFree   int   `json:"queue_free"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Retries     int64 `json:"retries"`
	Panics      int64 `json:"panics"`
	Shed        int64 `json:"shed"`
	WorkersLost int64 `json:"workers_lost"`
}

// StreamStats reports the event-bus side of the daemon: how many live
// subscribers it is fanning out to and how many frames were dropped to slow
// consumers instead of blocking the diagnosis hot path.
type StreamStats struct {
	Subscribers int   `json:"subscribers"`
	Dropped     int64 `json:"dropped"`
}

// CacheStats reports the daemon's content-addressed circuit/ATPG cache on
// /v1/stats: occupancy against the -cache-bytes budget and lifetime
// hit/miss/eviction counts (HitRate = hits/(hits+misses), 0 when unused).
type CacheStats struct {
	Entries   int64   `json:"entries"`
	Bytes     int64   `json:"bytes"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats is the GET /v1/stats payload: a one-shot fleet summary for dedctop
// and monitoring scrapes that want structure rather than the Prometheus text
// on /metrics.
type Stats struct {
	TS time.Time `json:"ts"`
	// Role and Owner describe the replica's fleet position when the daemon
	// runs replicated: Role is "owner" or "follower", Owner the current
	// owner's advertised address. Both are empty on an in-memory store.
	Role     string               `json:"role,omitempty"`
	Owner    string               `json:"owner,omitempty"`
	Jobs     map[string]int       `json:"jobs"` // per-state retained job counts
	Pool     PoolStats            `json:"pool"`
	Counters map[string]int64     `json:"counters,omitempty"` // daemon counters (submissions, sheds, requeues, ...)
	Phases   map[string]Quantiles `json:"phases,omitempty"`   // queue_wait/attempt/e2e latency, nanoseconds
	Stream   StreamStats          `json:"stream"`
	Cache    CacheStats           `json:"cache"`             // content-addressed parse/ATPG cache
	Running  []Progress           `json:"running,omitempty"` // latest checkpoint per running attempt
}
