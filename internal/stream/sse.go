// Package stream is the live-introspection wire layer of dedcd: Server-Sent
// Events framing (writer and reader), a reconnecting client that resumes via
// Last-Event-ID, and the JSON schemas carried on the /v1/jobs/{id}/events and
// /v1/stats endpoints. It is stdlib-only, like everything else in the stack,
// so dedctop and test harnesses consume the same code the daemon serves with.
package stream

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
)

// Event is one SSE frame. ID and Type map to the "id:" and "event:" fields
// (empty = omitted); Data is the payload, split across "data:" lines on
// newlines and rejoined by conforming readers.
type Event struct {
	ID   string
	Type string
	Data []byte
}

// Writer frames events onto an http.ResponseWriter, flushing after every
// frame so a proxy-less client sees each event as it happens.
type Writer struct {
	w  io.Writer
	rc *http.ResponseController
}

// NewWriter sets the SSE response headers (Content-Type: text/event-stream,
// no caching, no buffering) and returns a Writer. It fails when the
// underlying connection cannot flush — SSE over a non-flushable writer would
// buffer forever.
func NewWriter(w http.ResponseWriter) (*Writer, error) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	rc := http.NewResponseController(w)
	if err := rc.Flush(); err != nil {
		return nil, errors.New("stream: response writer cannot flush")
	}
	return &Writer{w: w, rc: rc}, nil
}

// Send writes one event frame and flushes it.
func (sw *Writer) Send(e Event) error {
	var b bytes.Buffer
	if e.ID != "" {
		b.WriteString("id: " + e.ID + "\n")
	}
	if e.Type != "" {
		b.WriteString("event: " + e.Type + "\n")
	}
	for _, line := range bytes.Split(e.Data, []byte("\n")) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	if _, err := sw.w.Write(b.Bytes()); err != nil {
		return err
	}
	return sw.rc.Flush()
}

// Comment writes a comment line (": text") and flushes — the SSE heartbeat
// form: ignored by conforming readers, but it keeps intermediaries from
// idling out the connection and lets the server detect a gone client.
func (sw *Writer) Comment(text string) error {
	if _, err := io.WriteString(sw.w, ": "+text+"\n\n"); err != nil {
		return err
	}
	return sw.rc.Flush()
}

// Reader decodes SSE frames from a response body. It tracks the last seen
// event ID across frames, as the browser EventSource contract does, so a
// reconnecting client resumes from the right position even when later frames
// carried no ID of their own.
type Reader struct {
	sc     *bufio.Scanner
	lastID string
}

// maxLine bounds one SSE field line; result payloads ride the job API, not
// the stream, so frames stay small.
const maxLine = 1 << 20

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	return &Reader{sc: sc}
}

// Next returns the next complete event frame. Comment-only frames are
// skipped. io.EOF reports a cleanly ended stream.
func (r *Reader) Next() (Event, error) {
	e := Event{}
	var data [][]byte
	seen := false
	for r.sc.Scan() {
		line := r.sc.Text()
		if line == "" {
			if !seen {
				continue // comment-only frame
			}
			e.Data = bytes.Join(data, []byte("\n"))
			return e, nil
		}
		if strings.HasPrefix(line, ":") {
			continue
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			e.ID = value
			r.lastID = value
		case "event":
			e.Type = value
			seen = true
		case "data":
			data = append(data, []byte(value))
			seen = true
		}
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// LastID returns the most recent "id:" field seen on any frame.
func (r *Reader) LastID() string { return r.lastID }
