package stream

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// flakyStream serves events [resume+1 .. limit] then cuts the connection
// without a clean end, forcing the client to reconnect with Last-Event-ID.
type flakyStream struct {
	mu       sync.Mutex
	conns    int
	resumes  []string
	perConn  int // events served per connection before the cut
	terminal int // ID of the final (terminal) event
}

func (f *flakyStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.conns++
	f.resumes = append(f.resumes, r.Header.Get("Last-Event-ID"))
	f.mu.Unlock()
	last := -1
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.Atoi(v)
	}
	sw, err := NewWriter(w)
	if err != nil {
		return
	}
	for i, n := last+1, 0; i <= f.terminal && n < f.perConn; i, n = i+1, n+1 {
		data := fmt.Sprintf(`{"index":%d,"terminal":%v}`, i, i == f.terminal)
		if err := sw.Send(Event{ID: strconv.Itoa(i), Type: TypeLifecycle, Data: []byte(data)}); err != nil {
			return
		}
	}
	// Drop the connection mid-stream (no clean close frame): the panic-free
	// way to sever is just returning; the client sees EOF and resumes.
}

// TestClientResumesAcrossDrops: the stream dies every 3 events; the client
// must collect 0..9 exactly once, reconnecting with the right Last-Event-ID
// each time.
func TestClientResumesAcrossDrops(t *testing.T) {
	fs := &flakyStream{perConn: 3, terminal: 9}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	c := &Client{URL: srv.URL, Retry: 10 * time.Millisecond}
	var got []string
	err := c.Run(context.Background(), func(e Event) error {
		got = append(got, e.ID)
		if e.ID == "9" {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != strconv.Itoa(i) {
			t.Fatalf("event %d has ID %s; full sequence %v", i, id, got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("collected %d events %v, want 10", len(got), got)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.conns != 4 {
		t.Errorf("server saw %d connections, want 4 (3+3+3+1)", fs.conns)
	}
	// Reconnects carried the resume position: "", "2", "5", "8".
	want := []string{"", "2", "5", "8"}
	for i, r := range fs.resumes {
		if i < len(want) && r != want[i] {
			t.Errorf("connection %d sent Last-Event-ID %q, want %q", i, r, want[i])
		}
	}
}

// TestClientFatalStatus: 4xx responses are terminal, not retried.
func TestClientFatalStatus(t *testing.T) {
	var conns int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns++
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer srv.Close()
	c := &Client{URL: srv.URL, Retry: time.Millisecond}
	err := c.Run(context.Background(), func(Event) error { return nil })
	var fatal *fatalStatusError
	if !errors.As(err, &fatal) || fatal.status != http.StatusNotFound {
		t.Fatalf("Run = %v, want fatal 404", err)
	}
	if conns != 1 {
		t.Errorf("client retried a 404: %d connections", conns)
	}
}

// TestClientHandlerErrorAborts: a handler error other than ErrStop surfaces
// immediately instead of triggering a reconnect.
func TestClientHandlerErrorAborts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, err := NewWriter(w)
		if err != nil {
			return
		}
		sw.Send(Event{ID: "0", Data: []byte("x")})
	}))
	defer srv.Close()
	boom := errors.New("boom")
	c := &Client{URL: srv.URL, Retry: time.Millisecond}
	if err := c.Run(context.Background(), func(Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
}

// TestClientContextCancel ends a blocked stream promptly.
func TestClientContextCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, err := NewWriter(w)
		if err != nil {
			return
		}
		for { // heartbeats only; never an event
			if err := sw.Comment("hb"); err != nil {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}))
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &Client{URL: srv.URL, Retry: time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx, func(Event) error { return nil }) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Run = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not end on context cancellation")
	}
}
