package bench

import (
	"strings"
	"testing"
	"unicode"

	"dedc/internal/circuit"
)

// FuzzRead exercises the .bench parser on arbitrary input: it must never
// panic, and anything it accepts must be a valid circuit that survives a
// write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add(c17)
	f.Add("INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = NAND(a, q)\n")
	f.Add("# empty\n")
	f.Add("b = AND(a, a)\n")
	f.Add("INPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT()\n")
	f.Add("x = XOR(x)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadString(src)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid circuit: %v\ninput: %q", verr, src)
		}
		out, werr := WriteString(c)
		if werr != nil {
			// Writer only rejects unnameable gate types, which the parser
			// cannot produce.
			t.Fatalf("round-trip write failed: %v", werr)
		}
		c2, rerr := ReadString(out)
		if rerr != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", rerr, out)
		}
		if !circuit.NameEqual(c, c2) {
			t.Fatalf("round trip not name-equal for input %q", src)
		}
	})
}

// FuzzDirectiveEdgeCases locks in whitespace/comment tolerance.
func FuzzDirectiveEdgeCases(f *testing.F) {
	f.Add("a", "b")
	f.Fuzz(func(t *testing.T, in, out string) {
		// Names must be free of syntax characters and of anything the
		// parser's TrimSpace calls strip (all Unicode whitespace, not just
		// ASCII blanks).
		if strings.ContainsAny(in+out, "(),=#") || in == "" || out == "" || in == out ||
			strings.IndexFunc(in+out, unicode.IsSpace) >= 0 {
			t.Skip()
		}
		src := "INPUT(" + in + ")\nOUTPUT(" + out + ")\n" + out + " = NOT(" + in + ")\n"
		c, err := ReadString(src)
		if err != nil {
			t.Fatalf("well-formed source rejected: %v\n%q", err, src)
		}
		if len(c.PIs) != 1 || len(c.POs) != 1 {
			t.Fatal("structure wrong")
		}
	})
}
