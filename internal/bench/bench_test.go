package bench

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dedc/internal/circuit"
	"dedc/internal/sim"
)

const c17 = `
# c17 — the classic 6-NAND ISCAS'85 warm-up circuit
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestReadC17(t *testing.T) {
	c, err := ReadString(c17)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 5 || len(c.POs) != 2 {
		t.Fatalf("PIs=%d POs=%d, want 5/2", len(c.PIs), len(c.POs))
	}
	if c.NumGates() != 11 {
		t.Fatalf("gates = %d, want 11", c.NumGates())
	}
	for i := 5; i < 11; i++ {
		if c.Gates[i].Type != circuit.Nand {
			t.Fatalf("gate %d type = %s, want NAND", i, c.Gates[i].Type)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadC17Function(t *testing.T) {
	c, err := ReadString(c17)
	if err != nil {
		t.Fatal(err)
	}
	// With all inputs 0, every first-level NAND is 1, so 22 = NAND(1,1) = 0?
	// Compute a couple of spot values against hand evaluation.
	pi, n, _ := sim.ExhaustivePatterns(5)
	val := sim.Simulate(c, pi, n)
	get := func(name string, pat int) bool {
		for i := range c.Gates {
			if c.Name(circuit.Line(i)) == name {
				return val[i][pat/64]>>(pat%64)&1 == 1
			}
		}
		t.Fatalf("no line %q", name)
		return false
	}
	// Pattern 0: all inputs 0. 10=NAND(0,0)=1, 16=NAND(0,1)=1, 22=NAND(1,1)=0.
	if get("22", 0) != false {
		t.Error("22 at all-zero inputs should be 0")
	}
	// 19=NAND(11=1, 7=0)=1, 23=NAND(16=1,19=1)=0.
	if get("23", 0) != false {
		t.Error("23 at all-zero inputs should be 0")
	}
	// Pattern 31: all inputs 1. 10=NAND(1,1)=0? inputs are named 1,2,3,6,7:
	// PI order is 1,2,3,6,7 → pattern 31 sets all. 10=NAND(1,3)=0, 11=0,
	// 16=NAND(1,0)=1, 19=NAND(0,1)=1, 22=NAND(0,1)=1, 23=NAND(1,1)=0.
	if get("22", 31) != true {
		t.Error("22 at all-one inputs should be 1")
	}
	if get("23", 31) != false {
		t.Error("23 at all-one inputs should be 0")
	}
}

func TestForwardReferences(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = AND(m, a)
m = NOT(a)
`
	c, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// y = a AND NOT a == 0 always.
	pi, n, _ := sim.ExhaustivePatterns(1)
	val := sim.Simulate(c, pi, n)
	if sim.Popcount(val[c.POs[0]], n) != 0 {
		t.Error("a AND NOT a should be constant 0")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "  INPUT( a )  # trailing comment\n#whole line\n\nOUTPUT(b)\nb = NOT(a)  \n"
	c, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PIs) != 1 || len(c.POs) != 1 || c.NumGates() != 2 {
		t.Fatalf("unexpected structure: %+v", c.Stats())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown gate", "INPUT(a)\nb = FROB(a)\nOUTPUT(b)\n"},
		{"missing paren", "INPUT(a)\nb = NOT a\nOUTPUT(b)\n"},
		{"undefined fanin", "INPUT(a)\nb = NOT(zz)\nOUTPUT(b)\n"},
		{"undefined output", "INPUT(a)\nb = NOT(a)\nOUTPUT(q)\n"},
		{"duplicate def", "INPUT(a)\nb = NOT(a)\nb = BUF(a)\nOUTPUT(b)\n"},
		{"empty fanin", "INPUT(a)\nb = AND(a,)\nOUTPUT(b)\n"},
		{"bad arity", "INPUT(a)\nb = AND(a)\nOUTPUT(b)\n"},
		{"no assignment", "INPUT(a)\njunk line\n"},
		{"empty input name", "INPUT()\n"},
		{"combinational cycle", "INPUT(a)\nx = AND(a, y)\ny = BUF(x)\nOUTPUT(y)\n"},
	}
	for _, tc := range cases {
		if _, err := ReadString(tc.src); err == nil {
			t.Errorf("%s: parse accepted invalid input", tc.name)
		}
	}
}

func TestSequentialFeedbackAccepted(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`
	c, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsSequential() {
		t.Fatal("DFF circuit not sequential")
	}
}

func TestWriteReadRoundTripC17(t *testing.T) {
	c, err := ReadString(c17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadString(s)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, s)
	}
	if !circuit.NameEqual(c, c2) {
		t.Fatalf("round trip not name-equal:\n%s", s)
	}
}

func TestWriteSequentialRoundTrip(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = NAND(a, q)
`
	c, err := ReadString(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadString(s)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, s)
	}
	if !circuit.NameEqual(c, c2) {
		t.Fatal("sequential round trip not name-equal")
	}
}

func TestWriterRejectsInputTypeOnly(t *testing.T) {
	c := circuit.New(2)
	a := c.AddPI("a")
	g := c.AddGate(circuit.Buf, a)
	c.MarkPO(g)
	if _, err := WriteString(c); err != nil {
		t.Fatalf("writer rejected valid circuit: %v", err)
	}
}

func randomNamedCircuit(rng *rand.Rand, nPI, nGate int) *circuit.Circuit {
	c := circuit.New(nPI + nGate)
	for i := 0; i < nPI; i++ {
		c.AddPI("in" + string(rune('a'+i)))
	}
	types := []circuit.GateType{circuit.Buf, circuit.Not, circuit.And, circuit.Nand,
		circuit.Or, circuit.Nor, circuit.Xor, circuit.Xnor}
	for i := 0; i < nGate; i++ {
		tt := types[rng.Intn(len(types))]
		n := tt.MinFanin()
		if tt.MaxFanin() < 0 {
			n += rng.Intn(3)
		}
		fanin := make([]circuit.Line, n)
		for j := range fanin {
			fanin[j] = circuit.Line(rng.Intn(c.NumLines()))
		}
		l := c.AddGate(tt, fanin...)
		c.Gates[l].Name = "g" + itoa(i)
	}
	fo := c.Fanout()
	for l := 0; l < c.NumLines(); l++ {
		if len(fo[l]) == 0 {
			c.MarkPO(circuit.Line(l))
		}
	}
	return c
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestPropertyRoundTripPreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomNamedCircuit(rng, 4, 25)
		s, err := WriteString(c)
		if err != nil {
			return false
		}
		c2, err := ReadString(s)
		if err != nil {
			return false
		}
		if !circuit.NameEqual(c, c2) {
			return false
		}
		// Same PI names must map positionally (writer preserves PI order).
		return sim.EquivalentExhaustive(c, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterTopologicalOrder(t *testing.T) {
	c, err := ReadString(c17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := WriteString(c)
	if err != nil {
		t.Fatal(err)
	}
	defined := map[string]bool{}
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "INPUT(") {
			defined[line[6:len(line)-1]] = true
			continue
		}
		if strings.HasPrefix(line, "OUTPUT(") {
			continue
		}
		parts := strings.SplitN(line, "=", 2)
		name := strings.TrimSpace(parts[0])
		rhs := strings.TrimSpace(parts[1])
		open := strings.IndexByte(rhs, '(')
		for _, a := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
			if !defined[strings.TrimSpace(a)] {
				t.Fatalf("gate %s uses %s before definition", name, strings.TrimSpace(a))
			}
		}
		defined[name] = true
	}
}
