// Package bench reads and writes the ISCAS ".bench" netlist format, the
// lingua franca of the ISCAS'85/'89 benchmark suites the paper evaluates on:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G10 = NAND(G1, G3)
//	G11 = NOT(G10)
//	G12 = DFF(G11)
//
// Gate names may be referenced before they are defined; the reader resolves
// forward references in a second pass. The writer emits gates in topological
// order so its output is always readable by single-pass tools.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dedc/internal/circuit"
)

var typeByName = map[string]circuit.GateType{
	"BUF":    circuit.Buf,
	"BUFF":   circuit.Buf,
	"NOT":    circuit.Not,
	"INV":    circuit.Not,
	"AND":    circuit.And,
	"NAND":   circuit.Nand,
	"OR":     circuit.Or,
	"NOR":    circuit.Nor,
	"XOR":    circuit.Xor,
	"XNOR":   circuit.Xnor,
	"DFF":    circuit.DFF,
	"CONST0": circuit.Const0,
	"CONST1": circuit.Const1,
}

var nameByType = map[circuit.GateType]string{
	circuit.Buf:    "BUF",
	circuit.Not:    "NOT",
	circuit.And:    "AND",
	circuit.Nand:   "NAND",
	circuit.Or:     "OR",
	circuit.Nor:    "NOR",
	circuit.Xor:    "XOR",
	circuit.Xnor:   "XNOR",
	circuit.DFF:    "DFF",
	circuit.Const0: "CONST0",
	circuit.Const1: "CONST1",
}

// ParseError reports a syntax or semantic problem with a .bench source.
type ParseError struct {
	LineNo int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.LineNo, e.Msg)
}

type rawGate struct {
	name   string
	typ    string
	fanin  []string
	lineNo int
}

// namedRef is a signal name paired with the source line that mentioned it,
// so semantic errors (duplicates, dangling references) can be positional.
type namedRef struct {
	name   string
	lineNo int
}

// Read parses a .bench netlist.
func Read(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var inputs, outputs []namedRef
	var gates []rawGate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case matchDirective(line, "INPUT"):
			name, err := directiveArg(line, "INPUT", lineNo)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, namedRef{name, lineNo})
		case matchDirective(line, "OUTPUT"):
			name, err := directiveArg(line, "OUTPUT", lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, namedRef{name, lineNo})
		default:
			g, err := parseAssignment(line, lineNo)
			if err != nil {
				return nil, err
			}
			gates = append(gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return build(inputs, outputs, gates)
}

// ReadString parses a .bench netlist from a string.
func ReadString(s string) (*circuit.Circuit, error) {
	return Read(strings.NewReader(s))
}

func matchDirective(line, kw string) bool {
	return len(line) > len(kw) && strings.EqualFold(line[:len(kw)], kw) &&
		strings.HasPrefix(strings.TrimSpace(line[len(kw):]), "(")
}

func directiveArg(line, kw string, lineNo int) (string, error) {
	rest := strings.TrimSpace(line[len(kw):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", &ParseError{lineNo, fmt.Sprintf("malformed %s directive %q", kw, line)}
	}
	name := strings.TrimSpace(rest[1 : len(rest)-1])
	if name == "" {
		return "", &ParseError{lineNo, fmt.Sprintf("empty name in %s directive", kw)}
	}
	return name, nil
}

func parseAssignment(line string, lineNo int) (rawGate, error) {
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("expected assignment, got %q", line)}
	}
	name := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("malformed gate expression %q", rhs)}
	}
	typ := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	if _, ok := typeByName[typ]; !ok {
		return rawGate{}, &ParseError{lineNo, fmt.Sprintf("unknown gate type %q", typ)}
	}
	argStr := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
	var fanin []string
	if argStr != "" {
		for _, a := range strings.Split(argStr, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return rawGate{}, &ParseError{lineNo, "empty fanin name"}
			}
			fanin = append(fanin, a)
		}
	}
	if name == "" {
		return rawGate{}, &ParseError{lineNo, "empty gate name"}
	}
	return rawGate{name: name, typ: typ, fanin: fanin, lineNo: lineNo}, nil
}

func build(inputs, outputs []namedRef, gates []rawGate) (*circuit.Circuit, error) {
	c := circuit.New(len(inputs) + len(gates))
	byName := make(map[string]circuit.Line, len(inputs)+len(gates))
	for _, in := range inputs {
		if _, dup := byName[in.name]; dup {
			return nil, &ParseError{in.lineNo, fmt.Sprintf("duplicate INPUT declaration of %q", in.name)}
		}
		byName[in.name] = c.AddPI(in.name)
	}
	// First pass: create every gate with empty fanin so forward references
	// resolve; second pass: connect.
	for _, g := range gates {
		if _, dup := byName[g.name]; dup {
			return nil, &ParseError{g.lineNo, fmt.Sprintf("duplicate definition of %q", g.name)}
		}
		byName[g.name] = c.AddNamedGate(g.name, typeByName[g.typ])
	}
	for _, g := range gates {
		l := byName[g.name]
		for _, fn := range g.fanin {
			src, ok := byName[fn]
			if !ok {
				return nil, &ParseError{g.lineNo, fmt.Sprintf("undefined signal %q in fanin of %q", fn, g.name)}
			}
			c.AppendFanin(l, src)
		}
	}
	for _, out := range outputs {
		l, ok := byName[out.name]
		if !ok {
			return nil, &ParseError{out.lineNo, fmt.Sprintf("OUTPUT references undefined signal %q", out.name)}
		}
		c.MarkPO(l)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Write emits the circuit in .bench format. Gates appear in topological
// order (DFF feedback handled by cutting state elements for ordering only).
// A circuit with a combinational cycle returns an error wrapping
// circuit.ErrCombinationalCycle instead of panicking.
func Write(w io.Writer, c *circuit.Circuit) error {
	order, err := writeOrder(c)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.PIs), len(c.POs), c.NumGates()-len(c.PIs))
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Name(pi))
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Name(po))
	}
	for _, l := range order {
		g := &c.Gates[l]
		if g.Type == circuit.Input {
			continue
		}
		tn, ok := nameByType[g.Type]
		if !ok {
			return fmt.Errorf("bench: cannot serialize gate type %s", g.Type)
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Name(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.Name(l), tn, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// WriteString renders the circuit to a string.
func WriteString(c *circuit.Circuit) (string, error) {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// writeOrder returns a topological order that tolerates DFF feedback by
// ordering against a state-cut view of the circuit. A combinational cycle
// (one not broken by a DFF) is an error.
func writeOrder(c *circuit.Circuit) ([]circuit.Line, error) {
	if !c.IsSequential() {
		return c.TopoChecked()
	}
	cut := c.Clone()
	for i := range cut.Gates {
		if cut.Gates[i].Type == circuit.DFF {
			cut.Gates[i].Fanin = nil
		}
	}
	// DFFs order as sources in the cut view, which single-pass readers of
	// sequential .bench files must tolerate anyway (feedback makes a strict
	// def-before-use order impossible).
	return cut.TopoChecked()
}
