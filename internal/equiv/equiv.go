// Package equiv implements SAT-based formal equivalence checking of
// combinational netlists: the two circuits are Tseitin-encoded into CNF, a
// miter ORs the XORs of corresponding outputs, and a SAT solver decides
// whether any input distinguishes them. A Sat verdict yields a
// counterexample input vector; Unsat is a proof of equivalence.
//
// This is the library's formal upgrade over vector-based Equivalent checks:
// diagnose.RepairProven uses it in a counterexample-guided loop.
package equiv

import (
	"context"

	"dedc/internal/circuit"
	"dedc/internal/sat"
)

// Result is an equivalence verdict.
type Result struct {
	Equivalent bool
	// Counterexample assigns each PI (by position) a distinguishing value
	// when Equivalent is false.
	Counterexample []bool
	// Aborted is set when the solver hit its conflict budget or was
	// cancelled (verdict unreliable: treated as "not proven").
	Aborted bool
	// Cancelled is set when the abort came from context cancellation.
	Cancelled bool

	Conflicts int64
	Decisions int64
}

// Options bounds the SAT search.
type Options struct {
	// MaxConflicts aborts the proof attempt (0 = unlimited).
	MaxConflicts int64
	// Ctx, when non-nil, lets the caller cancel the proof mid-search; the
	// result comes back with Aborted and Cancelled set.
	Ctx context.Context
}

// Check decides whether circuits a and b are functionally equivalent. Both
// must be combinational with equal PI and PO counts (positional
// correspondence, as everywhere in this library). One-shot callers get a
// fresh solver per call; callers that check many candidates against one
// reference should hold a Session instead and let learnt clauses carry
// across checks.
func Check(a, b *circuit.Circuit, opt Options) (*Result, error) {
	ss, err := NewSession(a)
	if err != nil {
		return nil, err
	}
	return ss.Check(b, opt)
}

// encode Tseitin-encodes the circuit into the solver, returning one literal
// per line. piVars supplies shared input variables (positional). With
// act >= 0 every emitted clause is gated on the activation literal — it only
// constrains models where act holds, so the whole group can later be retired
// by asserting act.Neg() (see Session). constTrue shares the one global
// constant-true variable across encodes into the same solver; its defining
// unit clause is never gated.
func encode(s *sat.Solver, c *circuit.Circuit, piVars []int, act sat.Lit, constTrue *sat.Lit) []sat.Lit {
	add := func(lits ...sat.Lit) {
		if act >= 0 {
			lits = append(lits, act.Neg())
		}
		s.AddClause(lits...)
	}
	lits := make([]sat.Lit, c.NumLines())
	piIdx := map[circuit.Line]int{}
	for i, pi := range c.PIs {
		piIdx[pi] = i
	}
	getTrue := func() sat.Lit {
		if *constTrue == -1 {
			v := s.NewVar()
			*constTrue = sat.MkLit(v, true)
			s.AddClause(*constTrue)
		}
		return *constTrue
	}
	for _, l := range c.Topo() {
		g := &c.Gates[l]
		switch g.Type {
		case circuit.Input:
			lits[l] = sat.MkLit(piVars[piIdx[l]], true)
			continue
		case circuit.Const0:
			lits[l] = getTrue().Neg()
			continue
		case circuit.Const1:
			lits[l] = getTrue()
			continue
		case circuit.Buf, circuit.DFF:
			lits[l] = lits[g.Fanin[0]]
			continue
		case circuit.Not:
			lits[l] = lits[g.Fanin[0]].Neg()
			continue
		}
		out := sat.MkLit(s.NewVar(), true)
		ins := make([]sat.Lit, len(g.Fanin))
		for i, f := range g.Fanin {
			ins[i] = lits[f]
		}
		switch g.Type {
		case circuit.And, circuit.Nand:
			o := out
			if g.Type == circuit.Nand {
				o = out.Neg()
			}
			// o <-> AND(ins)
			long := make([]sat.Lit, 0, len(ins)+1)
			long = append(long, o)
			for _, in := range ins {
				add(o.Neg(), in) // o -> in
				long = append(long, in.Neg())
			}
			add(long...) // all ins -> o
		case circuit.Or, circuit.Nor:
			o := out
			if g.Type == circuit.Nor {
				o = out.Neg()
			}
			long := make([]sat.Lit, 0, len(ins)+1)
			long = append(long, o.Neg())
			for _, in := range ins {
				add(o, in.Neg()) // in -> o
				long = append(long, in)
			}
			add(long...) // o -> some in
		case circuit.Xor, circuit.Xnor:
			// Chain binary XORs.
			acc := ins[0]
			for i := 1; i < len(ins); i++ {
				var t sat.Lit
				if i == len(ins)-1 {
					t = out
					if g.Type == circuit.Xnor {
						t = out.Neg()
					}
				} else {
					t = sat.MkLit(s.NewVar(), true)
				}
				b := ins[i]
				// t <-> acc XOR b
				add(t.Neg(), acc, b)
				add(t.Neg(), acc.Neg(), b.Neg())
				add(t, acc, b.Neg())
				add(t, acc.Neg(), b)
				acc = t
			}
			lits[l] = out
			continue
		default:
			panic("equiv: cannot encode gate type " + g.Type.String())
		}
		lits[l] = out
	}
	return lits
}
