// Package equiv implements SAT-based formal equivalence checking of
// combinational netlists: the two circuits are Tseitin-encoded into CNF, a
// miter ORs the XORs of corresponding outputs, and a SAT solver decides
// whether any input distinguishes them. A Sat verdict yields a
// counterexample input vector; Unsat is a proof of equivalence.
//
// This is the library's formal upgrade over vector-based Equivalent checks:
// diagnose.RepairProven uses it in a counterexample-guided loop.
package equiv

import (
	"context"
	"fmt"

	"dedc/internal/circuit"
	"dedc/internal/sat"
	"dedc/internal/telemetry"
)

// Result is an equivalence verdict.
type Result struct {
	Equivalent bool
	// Counterexample assigns each PI (by position) a distinguishing value
	// when Equivalent is false.
	Counterexample []bool
	// Aborted is set when the solver hit its conflict budget or was
	// cancelled (verdict unreliable: treated as "not proven").
	Aborted bool
	// Cancelled is set when the abort came from context cancellation.
	Cancelled bool

	Conflicts int64
	Decisions int64
}

// Options bounds the SAT search.
type Options struct {
	// MaxConflicts aborts the proof attempt (0 = unlimited).
	MaxConflicts int64
	// Ctx, when non-nil, lets the caller cancel the proof mid-search; the
	// result comes back with Aborted and Cancelled set.
	Ctx context.Context
}

// Check decides whether circuits a and b are functionally equivalent. Both
// must be combinational with equal PI and PO counts (positional
// correspondence, as everywhere in this library).
func Check(a, b *circuit.Circuit, opt Options) (*Result, error) {
	if a.IsSequential() || b.IsSequential() {
		return nil, fmt.Errorf("equiv: sequential circuits; scan-convert or unroll first")
	}
	if len(a.PIs) != len(b.PIs) {
		return nil, fmt.Errorf("equiv: PI counts differ (%d vs %d)", len(a.PIs), len(b.PIs))
	}
	if len(a.POs) != len(b.POs) {
		return nil, fmt.Errorf("equiv: PO counts differ (%d vs %d)", len(a.POs), len(b.POs))
	}
	s := sat.NewSolver(0)
	// Shared PI variables.
	piVars := make([]int, len(a.PIs))
	for i := range piVars {
		piVars[i] = s.NewVar()
	}
	va := encode(s, a, piVars)
	vb := encode(s, b, piVars)

	// Miter: OR over outputs of (a_po XOR b_po) must be true.
	var diffs []sat.Lit
	for i := range a.POs {
		la := va[a.POs[i]]
		lb := vb[b.POs[i]]
		d := s.NewVar()
		dl := sat.MkLit(d, true)
		// d <-> la XOR lb
		s.AddClause(dl.Neg(), la, lb)
		s.AddClause(dl.Neg(), la.Neg(), lb.Neg())
		s.AddClause(dl, la, lb.Neg())
		s.AddClause(dl, la.Neg(), lb)
		diffs = append(diffs, dl)
	}
	if !s.AddClause(diffs...) {
		// Trivially no difference possible.
		return &Result{Equivalent: true}, nil
	}
	s.MaxConflicts = opt.MaxConflicts
	s.Ctx = opt.Ctx
	if opt.Ctx != nil {
		s.Instrument(telemetry.FromContext(opt.Ctx).Registry())
	}
	st := s.Solve()
	res := &Result{Conflicts: s.Conflicts, Decisions: s.Decisions}
	switch st {
	case sat.Unsat:
		res.Equivalent = true
	case sat.Sat:
		res.Counterexample = make([]bool, len(piVars))
		for i, v := range piVars {
			res.Counterexample[i] = s.Value(v)
		}
	default:
		res.Aborted = true
		res.Cancelled = s.Cancelled
	}
	return res, nil
}

// encode Tseitin-encodes the circuit into the solver, returning one literal
// per line. piVars supplies shared input variables (positional).
func encode(s *sat.Solver, c *circuit.Circuit, piVars []int) []sat.Lit {
	lits := make([]sat.Lit, c.NumLines())
	piIdx := map[circuit.Line]int{}
	for i, pi := range c.PIs {
		piIdx[pi] = i
	}
	var constTrue sat.Lit = -1
	getTrue := func() sat.Lit {
		if constTrue == -1 {
			v := s.NewVar()
			constTrue = sat.MkLit(v, true)
			s.AddClause(constTrue)
		}
		return constTrue
	}
	for _, l := range c.Topo() {
		g := &c.Gates[l]
		switch g.Type {
		case circuit.Input:
			lits[l] = sat.MkLit(piVars[piIdx[l]], true)
			continue
		case circuit.Const0:
			lits[l] = getTrue().Neg()
			continue
		case circuit.Const1:
			lits[l] = getTrue()
			continue
		case circuit.Buf, circuit.DFF:
			lits[l] = lits[g.Fanin[0]]
			continue
		case circuit.Not:
			lits[l] = lits[g.Fanin[0]].Neg()
			continue
		}
		out := sat.MkLit(s.NewVar(), true)
		ins := make([]sat.Lit, len(g.Fanin))
		for i, f := range g.Fanin {
			ins[i] = lits[f]
		}
		switch g.Type {
		case circuit.And, circuit.Nand:
			o := out
			if g.Type == circuit.Nand {
				o = out.Neg()
			}
			// o <-> AND(ins)
			long := make([]sat.Lit, 0, len(ins)+1)
			long = append(long, o)
			for _, in := range ins {
				s.AddClause(o.Neg(), in) // o -> in
				long = append(long, in.Neg())
			}
			s.AddClause(long...) // all ins -> o
		case circuit.Or, circuit.Nor:
			o := out
			if g.Type == circuit.Nor {
				o = out.Neg()
			}
			long := make([]sat.Lit, 0, len(ins)+1)
			long = append(long, o.Neg())
			for _, in := range ins {
				s.AddClause(o, in.Neg()) // in -> o
				long = append(long, in)
			}
			s.AddClause(long...) // o -> some in
		case circuit.Xor, circuit.Xnor:
			// Chain binary XORs.
			acc := ins[0]
			for i := 1; i < len(ins); i++ {
				var t sat.Lit
				if i == len(ins)-1 {
					t = out
					if g.Type == circuit.Xnor {
						t = out.Neg()
					}
				} else {
					t = sat.MkLit(s.NewVar(), true)
				}
				b := ins[i]
				// t <-> acc XOR b
				s.AddClause(t.Neg(), acc, b)
				s.AddClause(t.Neg(), acc.Neg(), b.Neg())
				s.AddClause(t, acc, b.Neg())
				s.AddClause(t, acc.Neg(), b)
				acc = t
			}
			lits[l] = out
			continue
		default:
			panic("equiv: cannot encode gate type " + g.Type.String())
		}
		lits[l] = out
	}
	return lits
}
