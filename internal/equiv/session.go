package equiv

import (
	"fmt"

	"dedc/internal/cache"
	"dedc/internal/circuit"
	"dedc/internal/sat"
	"dedc/internal/telemetry"
)

// sessionRebuildAfter bounds how many candidate groups a session encodes
// into one solver before rebuilding it from scratch. Retired groups stay in
// the clause database (satisfied by their negated activation literal but
// still walked by the watch lists), so a long-lived session would otherwise
// accrete dead clauses without bound.
const sessionRebuildAfter = 32

// Session is an incremental equivalence checker anchored to one reference
// circuit: the reference is Tseitin-encoded once into a persistent
// sat.Solver, and every Check encodes only the candidate — gated on a fresh
// activation literal — then solves under that single assumption
// (sat.SolveUnderAssumptions). Learnt clauses, VSIDS activity and saved
// phases survive across checks, so proving the same or a similar candidate
// again costs a fraction of a from-scratch miter proof; when a candidate is
// replaced, its whole clause group is retired by asserting the activation
// literal's negation.
//
// Two reuse levels fall out of the design:
//
//   - Same candidate structure again (fingerprint match): the existing group
//     is re-solved as-is. An Unsat verdict leaves the activation literal
//     root-falsified by the learnt clauses, so the re-proof is pure unit
//     propagation — this is the repeated-circuit fast path dedcbench's
//     satcheck_inc phase measures.
//   - New candidate against the same reference: the reference encoding and
//     everything learnt about it carry over; only the candidate cone is
//     encoded and searched fresh.
//
// A Session is not safe for concurrent use; give each goroutine its own.
type Session struct {
	spec *circuit.Circuit

	s         *sat.Solver
	piVars    []int
	specLits  []sat.Lit
	constTrue sat.Lit
	act       sat.Lit // current candidate group's activation literal (-1 = none)
	lastFP    string  // fingerprint of the encoded candidate
	encodes   int     // candidate groups since the last solver (re)build

	// Checks and Reused count Check calls and how many of them reused the
	// previous candidate encoding (fingerprint match).
	Checks int
	Reused int
}

// NewSession prepares an incremental checker against the given reference
// circuit, which must be combinational.
func NewSession(spec *circuit.Circuit) (*Session, error) {
	if spec.IsSequential() {
		return nil, fmt.Errorf("equiv: sequential circuits; scan-convert or unroll first")
	}
	ss := &Session{spec: spec}
	ss.build()
	return ss, nil
}

// build (re)creates the solver with the reference encoding only. Called at
// construction and whenever retired candidate groups have accreted past
// sessionRebuildAfter.
func (ss *Session) build() {
	ss.s = sat.NewSolver(0)
	ss.piVars = make([]int, len(ss.spec.PIs))
	for i := range ss.piVars {
		ss.piVars[i] = ss.s.NewVar()
	}
	ss.constTrue = -1
	ss.specLits = encode(ss.s, ss.spec, ss.piVars, -1, &ss.constTrue)
	ss.act = -1
	ss.lastFP = ""
	ss.encodes = 0
}

// Check decides whether b is equivalent to the session's reference circuit,
// under the same contract as the package-level Check. Candidates sharing the
// previous call's structural fingerprint reuse its encoding outright.
func (ss *Session) Check(b *circuit.Circuit, opt Options) (*Result, error) {
	if b.IsSequential() {
		return nil, fmt.Errorf("equiv: sequential circuits; scan-convert or unroll first")
	}
	if len(ss.spec.PIs) != len(b.PIs) {
		return nil, fmt.Errorf("equiv: PI counts differ (%d vs %d)", len(ss.spec.PIs), len(b.PIs))
	}
	if len(ss.spec.POs) != len(b.POs) {
		return nil, fmt.Errorf("equiv: PO counts differ (%d vs %d)", len(ss.spec.POs), len(b.POs))
	}
	ss.Checks++
	fp := cache.Fingerprint(b)
	if fp != "" && fp == ss.lastFP && ss.act >= 0 {
		ss.Reused++
	} else {
		ss.encodeCandidate(b, fp)
	}

	s := ss.s
	s.MaxConflicts = opt.MaxConflicts
	s.Ctx = opt.Ctx
	if opt.Ctx != nil {
		s.Instrument(telemetry.FromContext(opt.Ctx).Registry())
	}
	c0, d0 := s.Conflicts, s.Decisions
	st := s.SolveUnderAssumptions(ss.act)
	res := &Result{Conflicts: s.Conflicts - c0, Decisions: s.Decisions - d0}
	switch st {
	case sat.Unsat:
		res.Equivalent = true
	case sat.Sat:
		res.Counterexample = make([]bool, len(ss.piVars))
		for i, v := range ss.piVars {
			res.Counterexample[i] = s.Value(v)
		}
	default:
		res.Aborted = true
		res.Cancelled = s.Cancelled
	}
	return res, nil
}

// encodeCandidate retires the current candidate group (if any), rebuilds the
// solver when it has accreted too many dead groups, then encodes b and the
// miter over a fresh activation literal.
func (ss *Session) encodeCandidate(b *circuit.Circuit, fp string) {
	if ss.act >= 0 {
		ss.s.AddClause(ss.act.Neg())
	}
	if ss.encodes >= sessionRebuildAfter {
		ss.build()
	}
	act := sat.MkLit(ss.s.NewVar(), true)
	bl := encode(ss.s, b, ss.piVars, act, &ss.constTrue)

	// Miter: under act, the OR over outputs of (spec_po XOR b_po) must hold.
	diffs := make([]sat.Lit, 0, len(ss.spec.POs)+1)
	for i := range ss.spec.POs {
		la := ss.specLits[ss.spec.POs[i]]
		lb := bl[b.POs[i]]
		d := sat.MkLit(ss.s.NewVar(), true)
		ss.s.AddClause(d.Neg(), la, lb, act.Neg())
		ss.s.AddClause(d.Neg(), la.Neg(), lb.Neg(), act.Neg())
		ss.s.AddClause(d, la, lb.Neg(), act.Neg())
		ss.s.AddClause(d, la.Neg(), lb, act.Neg())
		diffs = append(diffs, d)
	}
	diffs = append(diffs, act.Neg())
	ss.s.AddClause(diffs...)

	ss.act = act
	ss.lastFP = fp
	ss.encodes++
}
