package equiv

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dedc/internal/circuit"
	"dedc/internal/errmodel"
	"dedc/internal/gen"
	"dedc/internal/opt"
	"dedc/internal/sim"
)

func mustCheck(t *testing.T, a, b *circuit.Circuit) *Result {
	t.Helper()
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("solver aborted")
	}
	return res
}

func TestIdenticalCircuitsEquivalent(t *testing.T) {
	c := gen.Alu(4)
	res := mustCheck(t, c, c.Clone())
	if !res.Equivalent {
		t.Fatal("identical circuits not proven equivalent")
	}
}

func TestDeMorganEquivalent(t *testing.T) {
	c1 := circuit.New(4)
	a := c1.AddPI("a")
	b := c1.AddPI("b")
	c1.MarkPO(c1.AddGate(circuit.Nand, a, b))
	c2 := circuit.New(6)
	a = c2.AddPI("a")
	b = c2.AddPI("b")
	c2.MarkPO(c2.AddGate(circuit.Or, c2.AddGate(circuit.Not, a), c2.AddGate(circuit.Not, b)))
	if !mustCheck(t, c1, c2).Equivalent {
		t.Fatal("De Morgan pair not proven equivalent")
	}
}

func TestAdderImplementationsEquivalent(t *testing.T) {
	// Ripple vs carry-select: structurally very different, functionally
	// identical — a real equivalence-checking workload.
	ra := gen.RippleAdder(8)
	cs := gen.CarrySelectAdder(8, 3)
	res := mustCheck(t, ra, cs)
	if !res.Equivalent {
		t.Fatal("adder implementations not proven equivalent")
	}
}

func TestOptimizerOutputProven(t *testing.T) {
	for _, c := range []*circuit.Circuit{
		gen.Alu(4), gen.ECC(8, false), gen.Comparator(6), gen.ArrayMultiplier(4),
	} {
		oc, err := opt.Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		if !mustCheck(t, c, oc).Equivalent {
			t.Fatal("optimizer output not proven equivalent")
		}
	}
}

func TestCounterexampleIsReal(t *testing.T) {
	// Inject a design error; the checker must find a distinguishing input,
	// and simulating it must actually distinguish the circuits.
	spec := gen.Alu(4)
	for seed := int64(0); seed < 5; seed++ {
		bad, _, err := errmodel.Inject(spec, 1, errmodel.InjectOptions{Seed: seed + 30})
		if err != nil {
			t.Fatal(err)
		}
		res := mustCheck(t, spec, bad)
		if res.Equivalent {
			t.Fatal("erroneous circuit proven equivalent")
		}
		if len(res.Counterexample) != len(spec.PIs) {
			t.Fatal("counterexample has wrong width")
		}
		pi := make([][]uint64, len(spec.PIs))
		for i, v := range res.Counterexample {
			pi[i] = make([]uint64, 1)
			if v {
				pi[i][0] = 1
			}
		}
		ga := sim.Outputs(spec, sim.Simulate(spec, pi, 1))
		gb := sim.Outputs(bad, sim.Simulate(bad, pi, 1))
		if sim.DiffMask(ga, gb, 1)[0] == 0 {
			t.Fatal("counterexample does not distinguish the circuits")
		}
	}
}

func TestPropertyAgreesWithExhaustiveSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen.Random(gen.RandomOptions{PIs: 5, Gates: 30, Seed: seed})
		var b *circuit.Circuit
		if rng.Intn(2) == 0 {
			oc, err := opt.Optimize(a)
			if err != nil {
				return false
			}
			b = oc
		} else {
			bb, _, err := errmodel.Inject(a, 1, errmodel.InjectOptions{Seed: seed ^ 5})
			if err != nil {
				return true // nothing injectable; skip
			}
			b = bb
		}
		res, err := Check(a, b, Options{})
		if err != nil || res.Aborted {
			return false
		}
		return res.Equivalent == sim.EquivalentExhaustive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestXorXnorEncoding(t *testing.T) {
	// Multi-input XOR/XNOR gates against their NAND expansions.
	b1 := gen.NewB()
	b1.UseXorGates = true
	x := b1.PI("x")
	y := b1.PI("y")
	z := b1.PI("z")
	b1.POName(b1.C.AddGate(circuit.Xor, x, y, z), "o")
	withGates := b1.Done()

	b2 := gen.NewB()
	x = b2.PI("x")
	y = b2.PI("y")
	z = b2.PI("z")
	b2.POName(b2.Xor2(b2.Xor2(x, y), z), "o")
	expanded := b2.Done()

	if !mustCheck(t, withGates, expanded).Equivalent {
		t.Fatal("XOR3 encoding wrong")
	}
	// XNOR3 version.
	b3 := gen.NewB()
	b3.UseXorGates = true
	x = b3.PI("x")
	y = b3.PI("y")
	z = b3.PI("z")
	b3.POName(b3.C.AddGate(circuit.Xnor, x, y, z), "o")
	b4 := gen.NewB()
	x = b4.PI("x")
	y = b4.PI("y")
	z = b4.PI("z")
	b4.POName(b4.Not(b4.Xor2(b4.Xor2(x, y), z)), "o")
	if !mustCheck(t, b3.Done(), b4.Done()).Equivalent {
		t.Fatal("XNOR3 encoding wrong")
	}
}

func TestConstantsEncoding(t *testing.T) {
	c1 := circuit.New(4)
	a := c1.AddPI("a")
	k := c1.AddGate(circuit.Const1)
	c1.MarkPO(c1.AddGate(circuit.And, a, k)) // = a
	c2 := circuit.New(2)
	a = c2.AddPI("a")
	c2.MarkPO(c2.AddGate(circuit.Buf, a))
	if !mustCheck(t, c1, c2).Equivalent {
		t.Fatal("constant encoding wrong")
	}
}

func TestInterfaceMismatchErrors(t *testing.T) {
	a := gen.RippleAdder(2)
	b := gen.RippleAdder(3)
	if _, err := Check(a, b, Options{}); err == nil {
		t.Fatal("PI mismatch accepted")
	}
}

func TestSequentialRejected(t *testing.T) {
	c := circuit.New(3)
	x := c.AddPI("x")
	c.MarkPO(c.AddGate(circuit.DFF, x))
	if _, err := Check(c, c.Clone(), Options{}); err == nil {
		t.Fatal("sequential circuit accepted")
	}
}

func TestConflictBudgetAborts(t *testing.T) {
	// A multiplier miter with a 1-conflict budget should abort (unless it
	// proves instantly, which it will not at this size).
	a := gen.ArrayMultiplier(6)
	b := gen.ArrayMultiplier(6)
	// Introduce a deep difference so the proof needs work.
	bb, _, err := errmodel.Inject(b, 1, errmodel.InjectOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(a, bb, Options{MaxConflicts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("different circuits proven equivalent")
	}
	// Either found a counterexample fast or aborted; both acceptable here.
}

func TestMultiplierEquivalenceScale(t *testing.T) {
	// Prove a 6x6 multiplier equals its optimized form: a meaningful UNSAT
	// instance (multiplier miters are the classic hard case for SAT; the
	// 8x8 version takes ~2 minutes and ~200k conflicts on this solver).
	c := gen.ArrayMultiplier(6)
	oc, err := opt.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(c, oc, Options{MaxConflicts: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Skip("solver budget exceeded on this machine")
	}
	if !res.Equivalent {
		t.Fatal("multiplier optimization not equivalent")
	}
	t.Logf("proved with %d conflicts, %d decisions", res.Conflicts, res.Decisions)
}
