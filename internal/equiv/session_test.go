package equiv

import (
	"testing"

	"dedc/internal/circuit"
	"dedc/internal/errmodel"
	"dedc/internal/gen"
	"dedc/internal/opt"
	"dedc/internal/sim"
)

// TestSessionMatchesFreshCheck is the incremental-vs-fresh parity contract:
// over a corpus of candidates — optimizer rewrites (equivalent) and injected
// errors (not) — one long-lived Session must return the same verdict as a
// from-scratch Check, and every counterexample must actually distinguish the
// circuits.
func TestSessionMatchesFreshCheck(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		spec := gen.Random(gen.RandomOptions{PIs: 6, Gates: 40, Seed: seed})
		ss, err := NewSession(spec)
		if err != nil {
			t.Fatal(err)
		}
		candidates := []*circuit.Circuit{spec.Clone()}
		if oc, err := opt.Optimize(spec); err == nil {
			candidates = append(candidates, oc)
		}
		for k := int64(0); k < 4; k++ {
			if bad, _, err := errmodel.Inject(spec, 1, errmodel.InjectOptions{Seed: seed*17 + k}); err == nil {
				candidates = append(candidates, bad)
			}
		}
		for ci, cand := range candidates {
			inc, err := ss.Check(cand, Options{})
			if err != nil {
				t.Fatalf("seed %d cand %d: session: %v", seed, ci, err)
			}
			fresh, err := Check(spec, cand, Options{})
			if err != nil {
				t.Fatalf("seed %d cand %d: fresh: %v", seed, ci, err)
			}
			if inc.Aborted || fresh.Aborted {
				t.Fatalf("seed %d cand %d: aborted (inc %v fresh %v)", seed, ci, inc.Aborted, fresh.Aborted)
			}
			if inc.Equivalent != fresh.Equivalent {
				t.Errorf("seed %d cand %d: session says %v, fresh says %v",
					seed, ci, inc.Equivalent, fresh.Equivalent)
			}
			if want := sim.EquivalentExhaustive(spec, cand); inc.Equivalent != want {
				t.Errorf("seed %d cand %d: session says %v, exhaustive sim says %v",
					seed, ci, inc.Equivalent, want)
			}
			if !inc.Equivalent && !distinguishes(spec, cand, inc.Counterexample) {
				t.Errorf("seed %d cand %d: session counterexample does not distinguish", seed, ci)
			}
		}
	}
}

// distinguishes simulates both circuits on the single input pattern and
// reports whether any PO differs.
func distinguishes(a, b *circuit.Circuit, input []bool) bool {
	pi := make([][]uint64, len(a.PIs))
	for i, v := range input {
		pi[i] = make([]uint64, 1)
		if v {
			pi[i][0] = 1
		}
	}
	oa := sim.Outputs(a, sim.Simulate(a, pi, 1))
	ob := sim.Outputs(b, sim.Simulate(b, pi, 1))
	return sim.DiffMask(oa, ob, 1)[0] != 0
}

// TestSessionReusesEncoding: checking the same candidate structure twice
// reuses the encoded group (Reused counts it), and after an Unsat verdict the
// re-proof is pure propagation — zero additional conflicts.
func TestSessionReusesEncoding(t *testing.T) {
	spec := gen.Alu(4)
	ss, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ss.Check(spec.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equivalent {
		t.Fatal("ALU not equivalent to its clone")
	}
	again, err := ss.Check(spec.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equivalent {
		t.Fatal("repeat check lost the verdict")
	}
	if ss.Checks != 2 || ss.Reused != 1 {
		t.Errorf("Checks=%d Reused=%d, want 2/1", ss.Checks, ss.Reused)
	}
	if again.Conflicts != 0 {
		t.Errorf("repeat proof searched again: %d conflicts", again.Conflicts)
	}
}

// TestSessionRebuild drives a session past sessionRebuildAfter distinct
// candidates: verdicts must stay correct straight through the internal
// solver rebuild.
func TestSessionRebuild(t *testing.T) {
	spec := gen.Random(gen.RandomOptions{PIs: 5, Gates: 25, Seed: 9})
	ss, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sessionRebuildAfter+4; i++ {
		var cand *circuit.Circuit
		wantEq := i%2 == 0
		if wantEq {
			cand = spec.Clone()
		} else {
			bad, _, ierr := errmodel.Inject(spec, 1, errmodel.InjectOptions{Seed: int64(100 + i)})
			if ierr != nil {
				continue
			}
			cand = bad
			wantEq = sim.EquivalentExhaustive(spec, cand) // injection may be masked
		}
		res, err := ss.Check(cand, Options{})
		if err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
		if res.Aborted || res.Equivalent != wantEq {
			t.Fatalf("check %d: got eq=%v aborted=%v, want eq=%v", i, res.Equivalent, res.Aborted, wantEq)
		}
	}
	if ss.encodes > sessionRebuildAfter {
		t.Errorf("session never rebuilt: %d encodes", ss.encodes)
	}
}

// TestSessionInterfaceErrors: PI/PO arity mismatches and sequential
// candidates fail up front with the same errors as the package-level Check.
func TestSessionInterfaceErrors(t *testing.T) {
	spec := gen.Alu(2)
	ss, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Check(gen.Alu(4), Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	seq := gen.RandomSequential(gen.RandomOptions{PIs: len(spec.PIs), Gates: 20, Seed: 3}, 2)
	if _, err := ss.Check(seq, Options{}); err == nil {
		t.Error("sequential candidate accepted")
	}
	if _, err := NewSession(seq); err == nil {
		t.Error("sequential reference accepted")
	}
}
