package sat

import (
	"testing"

	"dedc/internal/telemetry"
)

// gatedPigeonhole builds PHP(n+1, n) — n+1 pigeons into n holes, classically
// Unsat with real search effort — optionally gating every clause on act so
// the whole instance can be switched with one assumption.
func gatedPigeonhole(s *Solver, n int, act Lit) {
	vars := make([][]Lit, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]Lit, n)
		for h := 0; h < n; h++ {
			vars[p][h] = MkLit(s.NewVar(), true)
		}
	}
	add := func(lits ...Lit) {
		if act >= 0 {
			lits = append(lits, act.Neg())
		}
		s.AddClause(lits...)
	}
	for p := 0; p <= n; p++ {
		add(vars[p]...) // each pigeon sits somewhere
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				add(vars[p1][h].Neg(), vars[p2][h].Neg()) // no sharing
			}
		}
	}
}

// TestInstrumentIdempotent is the regression test for re-instrumenting a
// reused solver: wiring the same registry again must be a no-op (no reset,
// no double counting), while a different registry rewires.
func TestInstrumentIdempotent(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSolver(0)
	gatedPigeonhole(s, 4, -1)
	s.Instrument(reg)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(5,4) = %v, want UNSAT", st)
	}
	after1 := reg.Counter("sat.conflicts").Value()
	if after1 == 0 || after1 != s.Conflicts {
		t.Fatalf("counter %d vs solver %d after first solve", after1, s.Conflicts)
	}

	// Same registry again — as a session does before every check.
	s.Instrument(reg)
	s2 := NewSolver(0)
	gatedPigeonhole(s2, 4, -1)
	s2.Instrument(reg)
	if st := s2.Solve(); st != Unsat {
		t.Fatalf("second PHP = %v", st)
	}
	want := s.Conflicts + s2.Conflicts
	if got := reg.Counter("sat.conflicts").Value(); got != want {
		t.Errorf("sat.conflicts = %d after two solves, want %d (double or dropped counting)", got, want)
	}

	// A different registry takes over; the old one stops moving.
	reg2 := telemetry.NewRegistry()
	s.Instrument(reg2)
	old := reg.Counter("sat.conflicts").Value()
	gatedPigeonhole(s, 3, -1)
	if st := s.Solve(); st != Unsat {
		t.Fatal("reused solver lost the pigeonhole clauses")
	}
	if got := reg.Counter("sat.conflicts").Value(); got != old {
		t.Errorf("detached registry still counting: %d -> %d", old, got)
	}
	if got := reg2.Counter("sat.conflicts").Value(); got == 0 {
		t.Error("new registry saw no conflicts")
	}
}

// TestSolverReuseAcrossAssumptionGroups exercises the incremental contract
// equiv.Session relies on: gated constraint groups activated by assumption,
// retired by asserting the negated activation literal, with the solver —
// learnt clauses, activity, phase — surviving across calls.
func TestSolverReuseAcrossAssumptionGroups(t *testing.T) {
	s := NewSolver(0)
	act1 := MkLit(s.NewVar(), true)
	gatedPigeonhole(s, 4, act1)
	if st := s.SolveUnderAssumptions(act1); st != Unsat {
		t.Fatalf("gated PHP under act1 = %v, want UNSAT", st)
	}
	// Re-solving the same group is pure propagation: the refutation learnt
	// act1 is impossible at the root.
	c0 := s.Conflicts
	if st := s.SolveUnderAssumptions(act1); st != Unsat {
		t.Fatal("repeat check lost the verdict")
	}
	if s.Conflicts != c0 {
		t.Errorf("repeat check searched again: %d extra conflicts", s.Conflicts-c0)
	}
	// Without the assumption the formula is satisfiable (¬act1 switches the
	// whole group off).
	if st := s.Solve(); st != Sat {
		t.Fatal("retired group still constrains the formula")
	}
	// A second, satisfiable group on a fresh activation literal.
	act2 := MkLit(s.NewVar(), true)
	x := MkLit(s.NewVar(), true)
	y := MkLit(s.NewVar(), true)
	s.AddClause(x, y, act2.Neg())
	s.AddClause(x.Neg(), y.Neg(), act2.Neg())
	s.AddClause(act1.Neg()) // retire group 1 permanently
	if st := s.SolveUnderAssumptions(act2); st != Sat {
		t.Fatalf("group 2 under act2 = %v, want SAT", st)
	}
	if s.Value(x.Var()) == s.Value(y.Var()) {
		t.Error("model violates the XOR group")
	}
}

// TestMaxConflictsPerCall: the budget is per Solve call, not cumulative
// across a session — an early expensive call must not starve later ones.
func TestMaxConflictsPerCall(t *testing.T) {
	s := NewSolver(0)
	gatedPigeonhole(s, 7, -1)
	s.MaxConflicts = 25
	if st := s.Solve(); st != Unknown {
		t.Skipf("PHP(8,7) decided within 25 conflicts (%v); budget not exercised", st)
	}
	burned := s.Conflicts
	if burned < 25 {
		t.Fatalf("aborted before the budget: %d conflicts", burned)
	}
	// A second call under the same cap gets its own fresh slice: it burns
	// another ~25 conflicts instead of aborting instantly at zero the way a
	// cumulative cap would.
	if st := s.Solve(); st != Unknown {
		t.Skipf("PHP(8,7) decided on the second budget slice (%v)", st)
	}
	if s.Conflicts < burned+20 {
		t.Errorf("second call got only %d conflicts of budget; cap looks cumulative", s.Conflicts-burned)
	}
}
