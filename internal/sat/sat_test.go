package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lit(v int) Lit  { return MkLit(v, true) }
func nlit(v int) Lit { return MkLit(v, false) }

func TestLitBasics(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Pos() {
		t.Fatal("positive literal wrong")
	}
	n := l.Neg()
	if n.Var() != 5 || n.Pos() {
		t.Fatal("negation wrong")
	}
	if n.Neg() != l {
		t.Fatal("double negation not identity")
	}
	if l.String() != "x5" || n.String() != "!x5" {
		t.Fatalf("render: %s %s", l, n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(lit(0))
	s.AddClause(nlit(1))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(0) || s.Value(1) {
		t.Fatal("model wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(lit(0))
	if ok := s.AddClause(nlit(0)); ok {
		t.Fatal("contradiction not detected at add time")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewSolver(1)
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := NewSolver(1)
	s.AddClause(lit(0), nlit(0))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
}

func TestUnitChain(t *testing.T) {
	// x0 and chain of implications x0->x1->...->x9; then force !x9: UNSAT.
	s := NewSolver(10)
	s.AddClause(lit(0))
	for i := 0; i < 9; i++ {
		s.AddClause(nlit(i), lit(i+1))
	}
	s.AddClause(nlit(9))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestRequiresSearch(t *testing.T) {
	// (x0|x1) & (!x0|x1) & (x0|!x1): forces x0=1, x1=1.
	s := NewSolver(2)
	s.AddClause(lit(0), lit(1))
	s.AddClause(nlit(0), lit(1))
	s.AddClause(lit(0), nlit(1))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatal("model wrong")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classically UNSAT and requires
	// real clause learning to finish quickly for n=6.
	const holes = 6
	const pigeons = holes + 1
	s := NewSolver(pigeons * holes)
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(v(p1, h)), nlit(v(p2, h)))
			}
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("pigeonhole status %v", st)
	}
}

// bruteForce checks satisfiability of a small CNF exhaustively.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if val == l.Pos() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	fOK := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(8)
		nClauses := nVars * (2 + rng.Intn(4))
		var cnf [][]Lit
		s := NewSolver(nVars)
		for i := 0; i < nClauses; i++ {
			cl := make([]Lit, 0, 3)
			for j := 0; j < 3; j++ {
				cl = append(cl, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
			s.AddClause(cl...)
		}
		want := bruteForce(nVars, cnf)
		got := s.Solve() == Sat
		if got != want {
			return false
		}
		if got {
			// The model must satisfy every clause.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.Pos() {
						sat = true
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fOK, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestAssumptions(t *testing.T) {
	// x0 -> x1; solving under assumption x0 must set x1.
	s := NewSolver(2)
	s.AddClause(nlit(0), lit(1))
	if st := s.Solve(lit(0)); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(0) || !s.Value(1) {
		t.Fatal("assumption model wrong")
	}
	// Under assumption x0 with x1 forced false: UNSAT.
	s2 := NewSolver(2)
	s2.AddClause(nlit(0), lit(1))
	s2.AddClause(nlit(1))
	if st := s2.Solve(lit(0)); st != Unsat {
		t.Fatalf("status %v", st)
	}
	// Same solver without the assumption: SAT.
	if st := s2.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
}

func TestMaxConflictsAborts(t *testing.T) {
	// A hard pigeonhole with a tiny conflict budget must return Unknown.
	const holes = 8
	const pigeons = holes + 1
	s := NewSolver(pigeons * holes)
	v := func(p, h int) int { return p*holes + h }
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = lit(v(p, h))
		}
		s.AddClause(cl...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(v(p1, h)), nlit(v(p2, h)))
			}
		}
	}
	s.MaxConflicts = 10
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status %v, want Unknown under tiny budget", st)
	}
}

func TestNewVarGrows(t *testing.T) {
	s := NewSolver(0)
	v0 := s.NewVar()
	v1 := s.NewVar()
	if v0 != 0 || v1 != 1 || s.NumVars() != 2 {
		t.Fatal("variable allocation wrong")
	}
	s.AddClause(lit(5)) // implicit growth
	if s.NumVars() < 6 {
		t.Fatal("AddClause did not grow variables")
	}
}

func TestDuplicateLiteralsInClause(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(lit(0), lit(0), lit(1))
	s.AddClause(nlit(0))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(1) {
		t.Fatal("x1 should be forced")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}
