// Package sat implements a compact CDCL (conflict-driven clause learning)
// SAT solver: two-watched-literal propagation, first-UIP clause learning,
// VSIDS-style activity ordering, phase saving and Luby restarts. It backs
// the formal equivalence checking in package equiv, which upgrades the
// library's vector-based "repaired circuit matches the specification"
// checks into proofs (and produces counterexample vectors when they fail —
// the CEGAR loop of diagnose.RepairProven feeds those back into V).
package sat

import (
	"context"
	"fmt"

	"dedc/internal/telemetry"
)

// Lit is a literal: variable index shifted left once, LSB = negated.
// Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v (non-negated when pos).
func MkLit(v int, pos bool) Lit {
	l := Lit(v << 1)
	if !pos {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l&1 == 0 }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// String renders the literal (e.g. "x3" / "!x3").
func (l Lit) String() string {
	if l.Pos() {
		return fmt.Sprintf("x%d", l.Var())
	}
	return fmt.Sprintf("!x%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Status is the solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

// Solver is a CDCL SAT solver. Create with NewSolver, add clauses, Solve.
type Solver struct {
	clauses []*clause
	watches [][]*clause // watches[lit] = clauses watching lit

	assign  []lbool
	level   []int32
	reason  []*clause
	trail   []Lit
	trailLo []int32 // decision-level boundaries in trail
	qhead   int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool

	claInc   float64
	conflict bool
	unsatNow bool // empty clause added

	seen    []bool
	learnt  []Lit
	toClear []Lit

	// Stats (cumulative across Solve calls on a reused solver).
	Conflicts    int64
	Decisions    int64
	Propagations int64
	// Restarts counts Luby restarts (search re-entries after a spent
	// conflict budget), LearntKept the learnt clauses that survived
	// clause-database reductions.
	Restarts   int64
	LearntKept int64

	// Telemetry sinks for the stats above; nil (the default) no-ops. Solve
	// records the per-call deltas on return, so the CDCL inner loop never
	// touches an atomic. Wire with Instrument.
	CConflicts    *telemetry.Counter
	CDecisions    *telemetry.Counter
	CPropagations *telemetry.Counter
	CRestarts     *telemetry.Counter
	CLearntKept   *telemetry.Counter

	// instrReg remembers the registry Instrument last wired, making
	// re-registration on a long-lived (incremental) solver idempotent.
	instrReg *telemetry.Registry

	// MaxConflicts aborts the search with Unknown when a single Solve call
	// exceeds this many conflicts (0 = unlimited). The budget is per call,
	// not per solver lifetime, so an incremental session doesn't starve its
	// later checks on conflicts its earlier ones already paid for.
	MaxConflicts int64
	conflBase    int64 // Conflicts at the start of the current Solve

	// Ctx, when non-nil, is polled at bounded intervals during Solve;
	// cancellation or deadline expiry unwinds the search cleanly (trail
	// cancelled back to the root) and returns Unknown with Cancelled set.
	Ctx context.Context
	// Cancelled reports that the last Solve stopped on context
	// cancellation rather than a conflict budget.
	Cancelled bool

	ctxTick int // decisions since the last context poll
}

// ctxCheckInterval is how many decisions pass between context polls inside
// the CDCL loop. Conflicts are also polled at this granularity via the
// restart budget, which is always finite.
const ctxCheckInterval = 1024

// ctxDone polls the context at bounded intervals; forced skips the
// dampening (used at restart boundaries).
func (s *Solver) ctxDone(forced bool) bool {
	if s.Ctx == nil {
		return false
	}
	if !forced {
		s.ctxTick++
		if s.ctxTick < ctxCheckInterval {
			return false
		}
	}
	s.ctxTick = 0
	if s.Ctx.Err() != nil {
		s.Cancelled = true
		return true
	}
	return false
}

// NewSolver returns an empty solver with nVars variables.
func NewSolver(nVars int) *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.grow(nVars)
	return s
}

func (s *Solver) grow(nVars int) {
	for len(s.assign) < nVars {
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
	}
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return len(s.assign) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assign)
	s.grow(v + 1)
	return v
}

// AddClause adds a clause over the given literals. Returns false if the
// solver is already trivially unsatisfiable. On a reused solver the trail is
// first unwound to the root, so the top-level simplification below only ever
// sees root-level (proven) assignments — never leftovers of a previous Sat
// model.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsatNow {
		return false
	}
	if s.decisionLevel() > 0 {
		s.cancelUntil(0)
	}
	// Deduplicate and detect tautologies.
	sorted := append([]Lit(nil), lits...)
	out := sorted[:0]
	for _, l := range sorted {
		if int(l.Var()) >= s.NumVars() {
			s.grow(l.Var() + 1)
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				return true // tautology: trivially satisfied
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	// Top-level simplification against existing root assignments.
	kept := out[:0]
	for _, l := range out {
		switch s.value(l) {
		case lTrue:
			return true
		case lUndef:
			kept = append(kept, l)
		}
	}
	switch len(kept) {
	case 0:
		s.unsatNow = true
		return false
	case 1:
		if !s.enqueue(kept[0], nil) {
			s.unsatNow = true
			return false
		}
		if s.propagate() != nil {
			s.unsatNow = true
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), kept...)}
	s.attach(c)
	s.clauses = append(s.clauses, c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Neg()] = append(s.watches[c.lits[0].Neg()], c)
	s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Pos() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	if l.Pos() {
		s.assign[l.Var()] = lTrue
	} else {
		s.assign[l.Var()] = lFalse
	}
	s.level[l.Var()] = int32(len(s.trailLo))
	s.reason[l.Var()] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[l]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg()] = append(s.watches[c.lits[1].Neg()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep remaining watches and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[l] = kept
				return c
			}
		}
		s.watches[l] = kept
	}
	return nil
}

func (s *Solver) decisionLevel() int { return len(s.trailLo) }

func (s *Solver) newDecisionLevel() {
	s.trailLo = append(s.trailLo, int32(len(s.trail)))
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lo := int(s.trailLo[lvl])
	for i := len(s.trail) - 1; i >= lo; i-- {
		l := s.trail[i]
		s.phase[l.Var()] = l.Pos()
		s.assign[l.Var()] = lUndef
		s.reason[l.Var()] = nil
		s.order.push(l.Var())
	}
	s.trail = s.trail[:lo]
	s.trailLo = s.trailLo[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP learning; returns the learnt clause (UIP
// first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	s.learnt = s.learnt[:0]
	s.learnt = append(s.learnt, 0) // placeholder for UIP
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.toClear = append(s.toClear, q)
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					s.learnt = append(s.learnt, q)
				}
			}
		}
		// Pick next literal from trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		pathC--
		s.seen[p.Var()] = false
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	s.learnt[0] = p.Neg()

	// Backjump level = max level among the other literals.
	bj := 0
	swapIdx := 1
	for i := 1; i < len(s.learnt); i++ {
		if int(s.level[s.learnt[i].Var()]) > bj {
			bj = int(s.level[s.learnt[i].Var()])
			swapIdx = i
		}
	}
	if len(s.learnt) > 1 {
		s.learnt[1], s.learnt[swapIdx] = s.learnt[swapIdx], s.learnt[1]
	}
	for _, q := range s.toClear {
		s.seen[q.Var()] = false
	}
	s.toClear = s.toClear[:0]
	out := append([]Lit(nil), s.learnt...)
	return out, bj
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.act += s.claInc
	if c.act > 1e20 {
		for _, cl := range s.clauses {
			if cl.learnt {
				cl.act *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

// luby returns the i-th element of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches under the given assumptions (may be empty). It returns Sat
// with the model retrievable via Value, Unsat, or Unknown when
// MaxConflicts was exceeded.
//
// A solver may be solved repeatedly, interleaved with AddClause and NewVar:
// learnt clauses, VSIDS activity and saved phases all persist, so later
// calls on the same formula family start from everything earlier calls
// discovered. SolveUnderAssumptions documents the contract incremental
// callers rely on.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsatNow {
		return Unsat
	}
	// Unwind a previous call's model before searching again: root-level
	// implications stay, everything above the root is re-derived under the
	// new assumptions.
	if s.decisionLevel() > 0 {
		s.cancelUntil(0)
	}
	s.Cancelled = false
	if s.ctxDone(true) {
		return Unknown
	}
	c0, d0, p0, r0, k0 := s.Conflicts, s.Decisions, s.Propagations, s.Restarts, s.LearntKept
	defer func() {
		s.CConflicts.Add(s.Conflicts - c0)
		s.CDecisions.Add(s.Decisions - d0)
		s.CPropagations.Add(s.Propagations - p0)
		s.CRestarts.Add(s.Restarts - r0)
		s.CLearntKept.Add(s.LearntKept - k0)
	}()
	s.conflBase = s.Conflicts
	s.order = newVarHeap(s)
	restart := int64(0)
	learntCap := len(s.clauses)/3 + 100

	for {
		restart++
		if restart > 1 {
			s.Restarts++
		}
		budget := 64 * luby(restart)
		st := s.search(assumptions, budget, &learntCap)
		if st != Unknown {
			s.cancelUntilRoot(st)
			return st
		}
		s.cancelUntil(0)
		if s.Cancelled || s.MaxConflicts > 0 && s.Conflicts-s.conflBase >= s.MaxConflicts {
			return Unknown
		}
	}
}

// SolveUnderAssumptions is Solve with the incremental contract spelled out:
// the solver is reusable across calls, and everything a call learns — learnt
// clauses, VSIDS activity, saved phases, root-level implications — survives
// into the next one. Assumptions hold for this call only; the standard
// activation-literal pattern (gate a clause group on a fresh literal,
// assume it here, retire the group later with AddClause(act.Neg())) turns
// that into add/remove of whole constraint groups. package equiv's Session
// is the in-tree user.
func (s *Solver) SolveUnderAssumptions(assumptions ...Lit) Status {
	return s.Solve(assumptions...)
}

// Instrument wires the solver's per-Solve stat deltas to reg
// ("sat.conflicts", "sat.decisions", "sat.propagations", "sat.restarts",
// "sat.learnt_kept"). A nil registry detaches them again. Re-instrumenting
// with the registry already wired is a no-op, so long-lived incremental
// solvers can be instrumented once per check without double-wiring.
func (s *Solver) Instrument(reg *telemetry.Registry) {
	if reg != nil && reg == s.instrReg {
		return
	}
	s.instrReg = reg
	s.CConflicts = reg.Counter("sat.conflicts", "CDCL conflicts during SAT solving.")
	s.CDecisions = reg.Counter("sat.decisions", "CDCL branching decisions during SAT solving.")
	s.CPropagations = reg.Counter("sat.propagations", "Unit propagations during SAT solving.")
	s.CRestarts = reg.Counter("sat.restarts", "Luby restarts during SAT solving.")
	s.CLearntKept = reg.Counter("sat.learnt_kept", "Learnt clauses retained through clause-database reductions.")
}

// cancelUntilRoot preserves the model for Sat, unwinds for Unsat.
func (s *Solver) cancelUntilRoot(st Status) {
	if st == Unsat {
		s.cancelUntil(0)
	}
}

func (s *Solver) search(assumptions []Lit, budget int64, learntCap *int) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			lits, bj := s.analyze(confl)
			s.cancelUntil(bj)
			if len(lits) == 1 {
				if !s.enqueue(lits[0], nil) {
					return Unsat
				}
			} else {
				c := &clause{lits: lits, learnt: true, act: s.claInc}
				s.attach(c)
				s.clauses = append(s.clauses, c)
				s.enqueue(lits[0], c)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.nLearnt() > *learntCap {
				s.reduceDB()
				*learntCap += *learntCap / 10
			}
			continue
		}
		if conflicts >= budget {
			return Unknown
		}
		if s.MaxConflicts > 0 && s.Conflicts-s.conflBase >= s.MaxConflicts {
			return Unknown
		}
		if s.ctxDone(false) {
			return Unknown
		}
		// Assumptions first, then VSIDS decisions.
		next := Lit(-1)
		for _, a := range assumptions {
			switch s.value(a) {
			case lFalse:
				return Unsat // assumption conflicts with root implications
			case lUndef:
				next = a
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v < 0 {
				return Sat
			}
			next = MkLit(v, s.phase[v])
		}
		s.Decisions++
		s.newDecisionLevel()
		s.enqueue(next, nil)
	}
}

func (s *Solver) nLearnt() int {
	n := 0
	for _, c := range s.clauses {
		if c.learnt && !c.deleted {
			n++
		}
	}
	return n
}

// reduceDB discards the less active half of the learnt clauses (those not
// currently acting as reasons).
func (s *Solver) reduceDB() {
	var learnts []*clause
	for _, c := range s.clauses {
		if c.learnt && !c.deleted && !s.isReason(c) && len(c.lits) > 2 {
			learnts = append(learnts, c)
		}
	}
	if len(learnts) < 2 {
		return
	}
	// Median-activity split via simple selection.
	med := medianActivity(learnts)
	for _, c := range learnts {
		if c.act < med {
			c.deleted = true
		}
	}
	s.compact()
	s.LearntKept += int64(s.nLearnt())
}

func medianActivity(cs []*clause) float64 {
	acts := make([]float64, len(cs))
	for i, c := range cs {
		acts[i] = c.act
	}
	// Selection of the median without full sort (n is modest).
	k := len(acts) / 2
	lo, hi := 0, len(acts)-1
	for lo < hi {
		p := acts[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for acts[i] < p {
				i++
			}
			for acts[j] > p {
				j--
			}
			if i <= j {
				acts[i], acts[j] = acts[j], acts[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return acts[k]
}

func (s *Solver) isReason(c *clause) bool {
	if len(c.lits) == 0 {
		return false
	}
	v := c.lits[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

// compact removes deleted clauses from the clause list and watch lists.
func (s *Solver) compact() {
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.clauses = kept
	for i := range s.watches {
		ws := s.watches[i][:0]
		for _, c := range s.watches[i] {
			if !c.deleted {
				ws = append(ws, c)
			}
		}
		s.watches[i] = ws
	}
}

func (s *Solver) pickBranchVar() int {
	for s.order.len() > 0 {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// Value returns the model value of variable v after a Sat verdict.
func (s *Solver) Value(v int) bool { return s.assign[v] == lTrue }

// varHeap is a max-heap over variable activity with lazy membership.
type varHeap struct {
	s    *Solver
	heap []int32
	pos  []int32 // position in heap, -1 if absent
}

func newVarHeap(s *Solver) *varHeap {
	h := &varHeap{s: s, pos: make([]int32, s.NumVars())}
	for i := range h.pos {
		h.pos[i] = -1
	}
	for v := 0; v < s.NumVars(); v++ {
		h.push(v)
	}
	return h
}

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return h.s.activity[h.heap[i]] > h.s.activity[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		c := 2*i + 1
		if c >= len(h.heap) {
			return
		}
		if c+1 < len(h.heap) && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			return
		}
		h.swap(i, c)
		i = c
	}
}

func (h *varHeap) push(v int) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] != -1 {
		return
	}
	h.heap = append(h.heap, int32(v))
	h.pos[v] = int32(len(h.heap) - 1)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return int(v)
}

func (h *varHeap) update(v int) {
	if h.pos[v] != -1 {
		h.up(int(h.pos[v]))
	}
}
