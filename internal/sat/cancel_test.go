package sat

import (
	"context"
	"testing"
	"time"
)

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — unsatisfiable,
// and exponentially hard for resolution-based solvers, so a search on it
// reliably outlives short deadlines.
func pigeonhole(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		row := make([]Lit, n)
		for j := 0; j < n; j++ {
			row[j] = lit(p[i][j])
		}
		s.AddClause(row...)
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= n; i++ {
			for k := i + 1; k <= n; k++ {
				s.AddClause(nlit(p[i][j]), nlit(p[k][j]))
			}
		}
	}
}

func TestSolveCancelledBeforeStart(t *testing.T) {
	s := NewSolver(2)
	s.AddClause(lit(0), lit(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Ctx = ctx
	if st := s.Solve(); st != Unknown {
		t.Fatalf("pre-cancelled solve returned %v, want Unknown", st)
	}
	if !s.Cancelled {
		t.Fatal("Cancelled not set")
	}
	// Clearing the context makes the same solver usable again: the unwind
	// must have restored decision level 0.
	s.Ctx = nil
	if st := s.Solve(); st != Sat {
		t.Fatalf("re-solve returned %v, want Sat", st)
	}
}

func TestSolveCancelMidSearch(t *testing.T) {
	s := NewSolver(0)
	pigeonhole(s, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	s.Ctx = ctx
	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)
	if st != Unknown {
		t.Fatalf("cancelled solve returned %v, want Unknown", st)
	}
	if !s.Cancelled {
		t.Fatal("Cancelled not set after mid-search cancellation")
	}
	// Cancellation latency is bounded by the poll interval; anything under a
	// second means the dampened polling actually fired.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestMaxConflictsDoesNotSetCancelled(t *testing.T) {
	s := NewSolver(0)
	pigeonhole(s, 8)
	s.MaxConflicts = 50
	if st := s.Solve(); st != Unknown {
		t.Fatalf("conflict-limited solve returned %v, want Unknown", st)
	}
	if s.Cancelled {
		t.Fatal("conflict-budget abort must not report Cancelled")
	}
}
