// Package scan gives full-scan sequential circuits a combinational meaning:
// with every flip-flop on a scan chain, the tester can set and observe all
// state directly, so each DFF output becomes a pseudo primary input (PPI)
// and each DFF data input a pseudo primary output (PPO). The paper's
// ISCAS'89 experiments run on exactly this view.
package scan

import (
	"fmt"

	"dedc/internal/circuit"
)

// Converted is the combinational view of a sequential circuit. Line indices
// are preserved: line l of Comb corresponds to line l of the original
// circuit (converted DFF gates become Input pseudo-gates in place), so fault
// sites and corrections map back 1:1.
type Converted struct {
	Comb *circuit.Circuit
	// DFFs lists the original flip-flop lines, in index order. Their lines
	// now appear at the end of Comb.PIs (the PPIs) in the same order.
	DFFs []circuit.Line
	// PPOs lists the lines observed as next-state outputs, in DFF order
	// (appended to Comb.POs in that order, minus duplicates of existing
	// POs).
	PPOs []circuit.Line
	// OrigPIs / OrigPOs are the counts of true primary inputs and outputs.
	OrigPIs int
	OrigPOs int
}

// Convert builds the full-scan combinational view. Combinational circuits
// are rejected — use them directly.
func Convert(c *circuit.Circuit) (*Converted, error) {
	if !c.IsSequential() {
		return nil, fmt.Errorf("scan: circuit has no flip-flops")
	}
	nc := c.Clone()
	cv := &Converted{Comb: nc, OrigPIs: len(c.PIs), OrigPOs: len(c.POs)}
	for i := range nc.Gates {
		if nc.Gates[i].Type != circuit.DFF {
			continue
		}
		l := circuit.Line(i)
		cv.DFFs = append(cv.DFFs, l)
		cv.PPOs = append(cv.PPOs, nc.Gates[i].Fanin[0])
	}
	for _, l := range cv.DFFs {
		nc.Gates[l].Type = circuit.Input
		nc.Gates[l].Fanin = nil
		nc.PIs = append(nc.PIs, l)
	}
	for _, d := range cv.PPOs {
		nc.MarkPO(d)
	}
	// Direct Gates mutation above is safe: nc is a fresh clone, so no derived
	// caches exist yet to invalidate.
	if err := nc.Validate(); err != nil {
		return nil, fmt.Errorf("scan: converted circuit invalid: %w", err)
	}
	return cv, nil
}

// StepReference computes one clock cycle of the original sequential circuit
// on scalar values, for cross-checking the combinational view: given
// primary-input values (original PI order) and the current state (DFF
// order), it returns the primary-output values and the next state. The
// original circuit c must be the one passed to Convert.
func (cv *Converted) StepReference(piVals []bool, state []bool) (po []bool, next []bool) {
	c := cv.Comb // identical structure with DFFs as inputs
	vals := make([]bool, c.NumLines())
	for i, p := range c.PIs[:cv.OrigPIs] {
		vals[p] = piVals[i]
	}
	for i, d := range cv.DFFs {
		vals[d] = state[i]
	}
	for _, l := range c.Topo() {
		g := &c.Gates[l]
		if g.Type == circuit.Input {
			continue
		}
		vals[l] = evalScalar(c, g, vals)
	}
	po = make([]bool, cv.OrigPOs)
	for i, p := range c.POs[:cv.OrigPOs] {
		po[i] = vals[p]
	}
	next = make([]bool, len(cv.PPOs))
	for i, d := range cv.PPOs {
		next[i] = vals[d]
	}
	return po, next
}

func evalScalar(c *circuit.Circuit, g *circuit.Gate, vals []bool) bool {
	in := func(i int) bool { return vals[g.Fanin[i]] }
	switch g.Type {
	case circuit.Const0:
		return false
	case circuit.Const1:
		return true
	case circuit.Buf, circuit.DFF:
		return in(0)
	case circuit.Not:
		return !in(0)
	case circuit.And, circuit.Nand:
		acc := true
		for i := range g.Fanin {
			acc = acc && in(i)
		}
		if g.Type == circuit.Nand {
			return !acc
		}
		return acc
	case circuit.Or, circuit.Nor:
		acc := false
		for i := range g.Fanin {
			acc = acc || in(i)
		}
		if g.Type == circuit.Nor {
			return !acc
		}
		return acc
	case circuit.Xor, circuit.Xnor:
		acc := false
		for i := range g.Fanin {
			acc = acc != in(i)
		}
		if g.Type == circuit.Xnor {
			return !acc
		}
		return acc
	}
	panic("scan: cannot evaluate " + g.Type.String())
}
