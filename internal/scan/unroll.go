package scan

import (
	"fmt"

	"dedc/internal/circuit"
)

// Unrolled is a time-frame expansion of a sequential circuit: frames copies
// of the combinational logic chained through the state, giving the
// sequential circuit a purely combinational meaning over input sequences.
// The paper names time-frame expansion as the route to diagnosing
// non-scan sequential circuits with the same engine.
type Unrolled struct {
	Comb   *circuit.Circuit
	Frames int
	// Frame f's copy of original line l sits at Line(f, l).
	lineMap [][]circuit.Line
	// InitState holds the frame-0 state inputs (one PI per DFF) appended
	// after the frame-0 PIs.
	InitState []circuit.Line
	origPIs   int
	origPOs   int
	nDFF      int
}

// Line returns the unrolled line corresponding to original line l in frame f.
func (u *Unrolled) Line(f int, l circuit.Line) circuit.Line { return u.lineMap[f][l] }

// Unroll expands a sequential circuit over the given number of time frames.
// Primary inputs are replicated per frame (frame-major order: all frame-0
// PIs, initial state PIs, frame-1 PIs, ...). Primary outputs are replicated
// per frame; the final state is observable as additional outputs after the
// last frame's POs. Combinational circuits are rejected.
func Unroll(c *circuit.Circuit, frames int) (*Unrolled, error) {
	if frames < 1 {
		return nil, fmt.Errorf("scan: need at least one frame")
	}
	if !c.IsSequential() {
		return nil, fmt.Errorf("scan: circuit has no flip-flops; use it directly")
	}
	var dffs []circuit.Line
	for i := range c.Gates {
		if c.Gates[i].Type == circuit.DFF {
			dffs = append(dffs, circuit.Line(i))
		}
	}
	u := &Unrolled{
		Comb:    circuit.New(frames * c.NumLines()),
		Frames:  frames,
		lineMap: make([][]circuit.Line, frames),
		origPIs: len(c.PIs),
		origPOs: len(c.POs),
		nDFF:    len(dffs),
	}
	// Evaluation order within a frame: the DFF-cut topological order (state
	// reads come from the previous frame, so cutting DFF fanins removes all
	// feedback).
	cut := c.Clone()
	for _, d := range dffs {
		cut.Gates[d].Fanin = nil
	}
	order := cut.Topo()

	for f := 0; f < frames; f++ {
		u.lineMap[f] = make([]circuit.Line, c.NumLines())
		for i := range u.lineMap[f] {
			u.lineMap[f][i] = circuit.NoLine
		}
		// Frame PIs first, in original PI order, for predictable layout.
		for _, pi := range c.PIs {
			u.lineMap[f][pi] = u.Comb.AddPI(fmt.Sprintf("%s@%d", c.Name(pi), f))
		}
		if f == 0 {
			for _, d := range dffs {
				l := u.Comb.AddPI(fmt.Sprintf("%s@init", c.Name(d)))
				u.lineMap[0][d] = l
				u.InitState = append(u.InitState, l)
			}
		} else {
			// DFF output in frame f = its data input value in frame f-1.
			for _, d := range dffs {
				prev := u.lineMap[f-1][c.Gates[d].Fanin[0]]
				u.lineMap[f][d] = prev
			}
		}
		for _, l := range order {
			g := &c.Gates[l]
			if g.Type == circuit.Input || g.Type == circuit.DFF {
				continue
			}
			fin := make([]circuit.Line, len(g.Fanin))
			for p, src := range g.Fanin {
				fin[p] = u.lineMap[f][src]
			}
			u.lineMap[f][l] = u.Comb.AddNamedGate(fmt.Sprintf("%s@%d", c.Name(l), f), g.Type, fin...)
		}
		for _, po := range c.POs {
			u.Comb.MarkPO(u.lineMap[f][po])
		}
	}
	// Final state observability.
	last := frames - 1
	for _, d := range dffs {
		u.Comb.MarkPO(u.lineMap[last][c.Gates[d].Fanin[0]])
	}
	if err := u.Comb.Validate(); err != nil {
		return nil, fmt.Errorf("scan: unrolled circuit invalid: %w", err)
	}
	return u, nil
}
