package scan

import (
	"math/rand"
	"testing"

	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

// counterCircuit builds a 1-bit toggle counter: q' = q XOR en, out = q.
func counterCircuit() *circuit.Circuit {
	c := circuit.New(6)
	en := c.AddPI("en")
	// Forward-declare the DFF with a placeholder fanin, then patch.
	q := c.AddGate(circuit.DFF, en)
	d := c.AddGate(circuit.Xor, q, en)
	c.Gates[q].Fanin[0] = d
	c.MarkPO(q)
	return c
}

func TestConvertCounter(t *testing.T) {
	c := counterCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Comb.IsSequential() {
		t.Fatal("converted circuit still sequential")
	}
	if len(cv.DFFs) != 1 || len(cv.PPOs) != 1 {
		t.Fatalf("DFFs=%d PPOs=%d, want 1/1", len(cv.DFFs), len(cv.PPOs))
	}
	if len(cv.Comb.PIs) != 2 {
		t.Fatalf("comb PIs = %d, want 2 (en + PPI)", len(cv.Comb.PIs))
	}
	// Combinational function: PPO = q XOR en.
	pi, n, _ := sim.ExhaustivePatterns(2)
	val := sim.Simulate(cv.Comb, pi, n)
	d := cv.PPOs[0]
	// PI order: en (original), q (PPI). Pattern p: en=(p>>0)&1, q=(p>>1)&1.
	for p := 0; p < n; p++ {
		en := p&1 == 1
		q := p&2 == 2
		got := val[d][0]>>uint(p)&1 == 1
		if got != (q != en) {
			t.Fatalf("pattern %d: next state %v, want %v", p, got, q != en)
		}
	}
}

func TestConvertRejectsCombinational(t *testing.T) {
	c := gen.Alu(2)
	if _, err := Convert(c); err == nil {
		t.Fatal("combinational circuit accepted")
	}
}

func TestConvertPreservesLineIndices(t *testing.T) {
	c := gen.RandomSequential(gen.RandomOptions{PIs: 6, Gates: 60, Seed: 2}, 5)
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Comb.NumLines() != c.NumLines() {
		t.Fatal("conversion changed line count")
	}
	for i := range c.Gates {
		if c.Gates[i].Type == circuit.DFF {
			if cv.Comb.Gates[i].Type != circuit.Input {
				t.Fatalf("DFF %d not converted to Input", i)
			}
			continue
		}
		if cv.Comb.Gates[i].Type != c.Gates[i].Type {
			t.Fatalf("gate %d type changed", i)
		}
	}
}

func TestConvertPPIOrderAndCounts(t *testing.T) {
	const nFF = 7
	c := gen.RandomSequential(gen.RandomOptions{PIs: 5, Gates: 50, Seed: 9}, nFF)
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.DFFs) != nFF {
		t.Fatalf("DFFs = %d, want %d", len(cv.DFFs), nFF)
	}
	if len(cv.Comb.PIs) != cv.OrigPIs+nFF {
		t.Fatalf("PIs = %d, want %d", len(cv.Comb.PIs), cv.OrigPIs+nFF)
	}
	for i, d := range cv.DFFs {
		if cv.Comb.PIs[cv.OrigPIs+i] != d {
			t.Fatal("PPIs not appended in DFF order")
		}
	}
}

func TestStepReferenceAgainstCombSim(t *testing.T) {
	// The combinational view evaluated with (PI, state) must agree with the
	// scalar one-cycle reference on both POs and next state.
	c := gen.RandomSequential(gen.RandomOptions{PIs: 5, Gates: 60, Seed: 13}, 4)
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		piVals := make([]bool, cv.OrigPIs)
		for i := range piVals {
			piVals[i] = rng.Intn(2) == 1
		}
		state := make([]bool, len(cv.DFFs))
		for i := range state {
			state[i] = rng.Intn(2) == 1
		}
		po, next := cv.StepReference(piVals, state)

		rows := make([][]uint64, len(cv.Comb.PIs))
		for i := range rows {
			rows[i] = make([]uint64, 1)
		}
		for i, v := range piVals {
			if v {
				rows[i][0] = 1
			}
		}
		for i, v := range state {
			if v {
				rows[cv.OrigPIs+i][0] = 1
			}
		}
		val := sim.Simulate(cv.Comb, rows, 1)
		for i := 0; i < cv.OrigPOs; i++ {
			if (val[cv.Comb.POs[i]][0]&1 == 1) != po[i] {
				t.Fatalf("trial %d: PO %d mismatch", trial, i)
			}
		}
		for i, d := range cv.PPOs {
			if (val[d][0]&1 == 1) != next[i] {
				t.Fatalf("trial %d: next-state %d mismatch", trial, i)
			}
		}
	}
}

func TestMultiCycleSimulation(t *testing.T) {
	// Drive the toggle counter for several cycles through StepReference:
	// q toggles exactly when en is 1.
	c := counterCircuit()
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	state := []bool{false}
	want := false
	ens := []bool{true, true, false, true, false, false, true}
	for cycle, en := range ens {
		po, next := cv.StepReference([]bool{en}, state)
		if po[0] != state[0] {
			t.Fatalf("cycle %d: output should expose current state", cycle)
		}
		if en {
			want = !want
		}
		state = next
		if state[0] != want {
			t.Fatalf("cycle %d: state %v, want %v", cycle, state[0], want)
		}
	}
}

func TestConvertSuiteSequentials(t *testing.T) {
	if testing.Short() {
		t.Skip("suite conversion in -short mode")
	}
	for _, bm := range gen.Suite() {
		if !bm.Sequential {
			continue
		}
		c := bm.Build()
		cv, err := Convert(c)
		if err != nil {
			t.Errorf("%s: %v", bm.Name, err)
			continue
		}
		if err := cv.Comb.Validate(); err != nil {
			t.Errorf("%s: converted invalid: %v", bm.Name, err)
		}
	}
}
