package scan

import (
	"math/rand"
	"testing"

	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func TestUnrollCounterThreeFrames(t *testing.T) {
	c := counterCircuit() // q' = q XOR en, out = q
	u, err := Unroll(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Comb.IsSequential() {
		t.Fatal("unrolled circuit still sequential")
	}
	// PIs: en@0, q@init, en@1, en@2 -> 4.
	if len(u.Comb.PIs) != 4 {
		t.Fatalf("PIs = %d, want 4", len(u.Comb.PIs))
	}
	// Simulate all 16 input combinations and check against the reference
	// stepper.
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	pi, n, _ := sim.ExhaustivePatterns(4)
	val := sim.Simulate(u.Comb, pi, n)
	for p := 0; p < n; p++ {
		bit := func(l circuit.Line) bool { return val[l][0]>>uint(p)&1 == 1 }
		ens := []bool{pi[0][0]>>uint(p)&1 == 1, pi[2][0]>>uint(p)&1 == 1, pi[3][0]>>uint(p)&1 == 1}
		state := []bool{pi[1][0]>>uint(p)&1 == 1}
		for f := 0; f < 3; f++ {
			po, next := cv.StepReference([]bool{ens[f]}, state)
			// PO of frame f is the f-th PO (1 original PO per frame).
			if bit(u.Comb.POs[f]) != po[0] {
				t.Fatalf("pattern %d frame %d: PO mismatch", p, f)
			}
			state = next
		}
		// Final state output is the last PO.
		if bit(u.Comb.POs[len(u.Comb.POs)-1]) != state[0] {
			t.Fatalf("pattern %d: final state mismatch", p)
		}
	}
}

func TestUnrollRandomSequentialAgainstStepper(t *testing.T) {
	c := gen.RandomSequential(gen.RandomOptions{PIs: 4, Gates: 40, Seed: 6}, 3)
	cv, err := Convert(c)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 4
	u, err := Unroll(c, frames)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		// Random input sequence and initial state.
		ins := make([][]bool, frames)
		for f := range ins {
			ins[f] = make([]bool, cv.OrigPIs)
			for i := range ins[f] {
				ins[f][i] = rng.Intn(2) == 1
			}
		}
		state := make([]bool, len(cv.DFFs))
		for i := range state {
			state[i] = rng.Intn(2) == 1
		}

		// Drive the unrolled circuit with the same assignment.
		rows := make([][]uint64, len(u.Comb.PIs))
		for i := range rows {
			rows[i] = make([]uint64, 1)
		}
		piIdx := 0
		for i := range ins[0] {
			if ins[0][i] {
				rows[piIdx][0] = 1
			}
			piIdx++
		}
		for i := range state {
			if state[i] {
				rows[piIdx][0] = 1
			}
			piIdx++
		}
		for f := 1; f < frames; f++ {
			for i := range ins[f] {
				if ins[f][i] {
					rows[piIdx][0] = 1
				}
				piIdx++
			}
		}
		val := sim.Simulate(u.Comb, rows, 1)

		// Reference: step the sequential circuit frame by frame.
		st := append([]bool(nil), state...)
		for f := 0; f < frames; f++ {
			po, next := cv.StepReference(ins[f], st)
			for i := 0; i < cv.OrigPOs; i++ {
				got := val[u.Comb.POs[f*cv.OrigPOs+i]][0]&1 == 1
				if got != po[i] {
					t.Fatalf("trial %d frame %d PO %d: got %v want %v", trial, f, i, got, po[i])
				}
			}
			st = next
		}
	}
}

func TestUnrollRejectsCombinational(t *testing.T) {
	if _, err := Unroll(gen.Alu(2), 2); err == nil {
		t.Fatal("combinational circuit accepted")
	}
}

func TestUnrollRejectsZeroFrames(t *testing.T) {
	c := counterCircuit()
	if _, err := Unroll(c, 0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestUnrollLineMap(t *testing.T) {
	c := counterCircuit()
	u, err := Unroll(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every original line must map to a valid unrolled line in every frame.
	for f := 0; f < 2; f++ {
		for l := 0; l < c.NumLines(); l++ {
			if u.Line(f, circuit.Line(l)) == circuit.NoLine {
				t.Fatalf("frame %d line %d unmapped", f, l)
			}
		}
	}
	// Frame-1 copies are distinct from frame-0 copies for logic gates.
	for l := 0; l < c.NumLines(); l++ {
		if c.Gates[l].Type == circuit.Input || c.Gates[l].Type == circuit.DFF {
			continue
		}
		if u.Line(0, circuit.Line(l)) == u.Line(1, circuit.Line(l)) {
			t.Fatalf("line %d shared across frames", l)
		}
	}
}
