// Package opt implements the combinational area optimizer used to
// preprocess circuits for the stuck-at experiments (the paper optimizes the
// ISCAS circuits for area first so that diagnosis resolution is exact).
// Passes: constant folding, buffer and double-inverter sweeping, duplicate
// and complementary fanin simplification, structural hashing, and dead gate
// elimination. Functionality, PI order and PO order are preserved.
package opt

import (
	"fmt"
	"sort"

	"dedc/internal/circuit"
)

// Optimize returns an area-optimized copy of c. The input is not modified.
// Sequential circuits are rejected (optimize the scan-converted view
// instead).
func Optimize(c *circuit.Circuit) (*circuit.Circuit, error) {
	if c.IsSequential() {
		return nil, fmt.Errorf("opt: sequential circuit; convert with package scan first")
	}
	cur := c
	for i := 0; i < 8; i++ {
		next, changed := rewrite(cur)
		cur = next
		if !changed {
			break
		}
	}
	return cur, nil
}

// rewriter carries the state of one rewrite pass.
type rewriter struct {
	src    *circuit.Circuit
	dst    *circuit.Circuit
	remap  []circuit.Line // src line -> dst line
	hash   map[string]circuit.Line
	const0 circuit.Line
	const1 circuit.Line
	// changed tracks whether anything beyond verbatim copying happened.
	changed bool
}

func rewrite(src *circuit.Circuit) (*circuit.Circuit, bool) {
	r := &rewriter{
		src:    src,
		dst:    circuit.New(src.NumLines()),
		remap:  make([]circuit.Line, src.NumLines()),
		hash:   make(map[string]circuit.Line),
		const0: circuit.NoLine,
		const1: circuit.NoLine,
	}
	for i := range r.remap {
		r.remap[i] = circuit.NoLine
	}
	for _, l := range src.Topo() {
		r.remap[l] = r.emit(l)
	}
	// Preserve PO count and order; duplicate targets get a buffer so each PO
	// remains a distinct line.
	used := map[circuit.Line]bool{}
	for _, po := range src.POs {
		t := r.remap[po]
		if used[t] {
			t = r.dst.AddGate(circuit.Buf, t)
			r.changed = true
		}
		used[t] = true
		if r.dst.Gates[t].Name == "" {
			r.dst.Gates[t].Name = src.Name(po)
		}
		r.dst.MarkPO(t)
	}
	out, pruned := prune(r.dst)
	return out, r.changed || pruned
}

func (r *rewriter) getConst(v bool) circuit.Line {
	if v {
		if r.const1 == circuit.NoLine {
			r.const1 = r.dst.AddGate(circuit.Const1)
		}
		return r.const1
	}
	if r.const0 == circuit.NoLine {
		r.const0 = r.dst.AddGate(circuit.Const0)
	}
	return r.const0
}

// notOf returns a line computing NOT x in dst, collapsing double negation.
func (r *rewriter) notOf(x circuit.Line) circuit.Line {
	g := &r.dst.Gates[x]
	switch g.Type {
	case circuit.Not:
		return g.Fanin[0]
	case circuit.Const0:
		return r.getConst(true)
	case circuit.Const1:
		return r.getConst(false)
	}
	return r.hashed(circuit.Not, []circuit.Line{x})
}

// hashed creates (or reuses) a gate in dst keyed by type and fanins; AND,
// OR, NAND, NOR, XOR and XNOR fanins are sorted for commutativity.
func (r *rewriter) hashed(t circuit.GateType, fanin []circuit.Line) circuit.Line {
	key := keyOf(t, fanin)
	if l, ok := r.hash[key]; ok {
		r.changed = true
		return l
	}
	l := r.dst.AddGate(t, fanin...)
	r.hash[key] = l
	return l
}

func keyOf(t circuit.GateType, fanin []circuit.Line) string {
	fs := append([]circuit.Line(nil), fanin...)
	switch t {
	case circuit.And, circuit.Or, circuit.Nand, circuit.Nor, circuit.Xor, circuit.Xnor:
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	}
	b := make([]byte, 0, 4+8*len(fs))
	b = append(b, byte(t))
	for _, f := range fs {
		b = append(b, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
	}
	return string(b)
}

// emit rewrites one source gate into dst and returns the target line.
func (r *rewriter) emit(l circuit.Line) circuit.Line {
	g := &r.src.Gates[l]
	switch g.Type {
	case circuit.Input:
		nl := r.dst.AddPI(r.src.Name(l))
		return nl
	case circuit.Const0:
		return r.getConst(false)
	case circuit.Const1:
		return r.getConst(true)
	case circuit.DFF:
		return r.dst.AddNamedGate(g.Name, circuit.DFF, r.remap[g.Fanin[0]])
	}
	fin := make([]circuit.Line, len(g.Fanin))
	for i, f := range g.Fanin {
		fin[i] = r.remap[f]
	}
	switch g.Type {
	case circuit.Buf:
		r.changed = true
		return fin[0]
	case circuit.Not:
		return r.notOf(fin[0])
	case circuit.And, circuit.Nand, circuit.Or, circuit.Nor:
		return r.emitAndOr(g.Type, fin)
	case circuit.Xor, circuit.Xnor:
		return r.emitXor(g.Type, fin)
	}
	panic("opt: unexpected gate type " + g.Type.String())
}

func (r *rewriter) emitAndOr(t circuit.GateType, fin []circuit.Line) circuit.Line {
	// Work in the AND/OR core; apply output inversion at the end.
	invertOut := t == circuit.Nand || t == circuit.Nor
	isAnd := t == circuit.And || t == circuit.Nand
	ctrl := !isAnd // controlling constant: 0 for AND, 1 for OR

	kept := fin[:0]
	seen := map[circuit.Line]bool{}
	for _, f := range fin {
		fg := r.dst.Gates[f].Type
		if fg == circuit.Const0 || fg == circuit.Const1 {
			v := fg == circuit.Const1
			if v == ctrl {
				// Controlling constant: the whole gate is constant.
				r.changed = true
				return r.constOut(ctrl != invertOut)
			}
			r.changed = true
			continue // identity constant dropped
		}
		if seen[f] {
			r.changed = true
			continue
		}
		seen[f] = true
		kept = append(kept, f)
	}
	// x together with NOT x forces the controlling outcome.
	for _, f := range kept {
		if r.dst.Gates[f].Type == circuit.Not && seen[r.dst.Gates[f].Fanin[0]] {
			r.changed = true
			return r.constOut(ctrl != invertOut)
		}
	}
	switch len(kept) {
	case 0:
		// Empty AND is 1, empty OR is 0.
		r.changed = true
		return r.constOut(isAnd != invertOut)
	case 1:
		r.changed = true
		if invertOut {
			return r.notOf(kept[0])
		}
		return kept[0]
	}
	core := circuit.And
	if !isAnd {
		core = circuit.Or
	}
	if invertOut {
		core, _ = core.InversionOf()
	}
	return r.hashed(core, kept)
}

func (r *rewriter) constOut(v bool) circuit.Line { return r.getConst(v) }

func (r *rewriter) emitXor(t circuit.GateType, fin []circuit.Line) circuit.Line {
	inv := t == circuit.Xnor
	var kept []circuit.Line
	count := map[circuit.Line]int{}
	for _, f := range fin {
		fg := r.dst.Gates[f].Type
		switch fg {
		case circuit.Const0:
			r.changed = true
			continue
		case circuit.Const1:
			r.changed = true
			inv = !inv
			continue
		}
		count[f]++
	}
	for _, f := range fin {
		n, ok := count[f]
		if !ok || n < 0 {
			continue
		}
		if n > 1 {
			r.changed = true // pairs cancel
		}
		if n%2 == 1 {
			kept = append(kept, f)
		}
		count[f] = -1 // consumed
	}
	switch len(kept) {
	case 0:
		r.changed = true
		return r.constOut(inv)
	case 1:
		r.changed = true
		if inv {
			return r.notOf(kept[0])
		}
		return kept[0]
	}
	core := circuit.Xor
	if inv {
		core = circuit.Xnor
	}
	return r.hashed(core, kept)
}

// prune removes gates unreachable from the POs (PIs are always kept, in
// order, to preserve the interface).
func prune(c *circuit.Circuit) (*circuit.Circuit, bool) {
	keep := make([]bool, c.NumLines())
	var stack []circuit.Line
	for _, po := range c.POs {
		if !keep[po] {
			keep[po] = true
			stack = append(stack, po)
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[l].Fanin {
			if !keep[f] {
				keep[f] = true
				stack = append(stack, f)
			}
		}
	}
	for _, pi := range c.PIs {
		keep[pi] = true
	}
	dropped := false
	for l := 0; l < c.NumLines(); l++ {
		if !keep[l] {
			dropped = true
			break
		}
	}
	if !dropped {
		return c, false
	}
	nc := circuit.New(c.NumLines())
	remap := make([]circuit.Line, c.NumLines())
	for i := range remap {
		remap[i] = circuit.NoLine
	}
	for _, l := range c.Topo() {
		if !keep[l] {
			continue
		}
		g := &c.Gates[l]
		fin := make([]circuit.Line, len(g.Fanin))
		for i, f := range g.Fanin {
			fin[i] = remap[f]
		}
		remap[l] = nc.AddNamedGate(g.Name, g.Type, fin...)
	}
	for _, po := range c.POs {
		nc.MarkPO(remap[po])
	}
	return nc, true
}
