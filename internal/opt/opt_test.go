package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dedc/internal/circuit"
	"dedc/internal/gen"
	"dedc/internal/sim"
)

func mustOptimize(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	oc, err := Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Validate(); err != nil {
		t.Fatalf("optimized circuit invalid: %v", err)
	}
	return oc
}

func TestOptimizePreservesInterface(t *testing.T) {
	c := gen.Alu(4)
	oc := mustOptimize(t, c)
	if len(oc.PIs) != len(c.PIs) || len(oc.POs) != len(c.POs) {
		t.Fatalf("interface changed: %d/%d PIs, %d/%d POs",
			len(oc.PIs), len(c.PIs), len(oc.POs), len(c.POs))
	}
	for i := range c.PIs {
		if oc.Name(oc.PIs[i]) != c.Name(c.PIs[i]) {
			t.Fatalf("PI %d renamed: %s vs %s", i, oc.Name(oc.PIs[i]), c.Name(c.PIs[i]))
		}
	}
}

func TestOptimizeEquivalentOnGenerators(t *testing.T) {
	cases := []*circuit.Circuit{
		gen.RippleAdder(4),
		gen.CarrySelectAdder(6, 3),
		gen.Alu(4),
		gen.Comparator(4),
		gen.ECC(4, false),
		gen.ArrayMultiplier(4),
	}
	for i, c := range cases {
		oc := mustOptimize(t, c)
		n := 1024
		pi := sim.RandomPatterns(len(c.PIs), n, int64(i+1))
		if !sim.Equivalent(c, oc, pi, n) {
			t.Fatalf("case %d: optimization changed function", i)
		}
		if oc.NumGates() > c.NumGates() {
			t.Fatalf("case %d: gate count grew %d -> %d", i, c.NumGates(), oc.NumGates())
		}
	}
}

func TestOptimizePropertyEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		c := gen.Random(gen.RandomOptions{PIs: 6, Gates: 80, Seed: seed})
		oc, err := Optimize(c)
		if err != nil || oc.Validate() != nil {
			return false
		}
		return sim.EquivalentExhaustive(c, oc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantFolding(t *testing.T) {
	c := circuit.New(8)
	a := c.AddPI("a")
	k1 := c.AddGate(circuit.Const1)
	k0 := c.AddGate(circuit.Const0)
	g1 := c.AddGate(circuit.And, a, k1) // = a
	g2 := c.AddGate(circuit.Or, g1, k0) // = a
	c.MarkPO(g2)
	oc := mustOptimize(t, c)
	// Result should be a buffer-free pass-through: PO is the PI itself.
	if oc.POs[0] != oc.PIs[0] {
		t.Fatalf("constant folding left structure: PO=%d PI=%d gates=%d", oc.POs[0], oc.PIs[0], oc.NumGates())
	}
}

func TestControllingConstant(t *testing.T) {
	c := circuit.New(6)
	a := c.AddPI("a")
	k0 := c.AddGate(circuit.Const0)
	g := c.AddGate(circuit.And, a, k0) // = 0
	c.MarkPO(g)
	oc := mustOptimize(t, c)
	if oc.Gates[oc.POs[0]].Type != circuit.Const0 {
		t.Fatalf("AND with 0 not folded to CONST0, got %s", oc.Gates[oc.POs[0]].Type)
	}
}

func TestDoubleInverterSweep(t *testing.T) {
	c := circuit.New(6)
	a := c.AddPI("a")
	n1 := c.AddGate(circuit.Not, a)
	n2 := c.AddGate(circuit.Not, n1)
	c.MarkPO(n2)
	oc := mustOptimize(t, c)
	if oc.POs[0] != oc.PIs[0] {
		t.Fatal("double inverter not swept")
	}
}

func TestComplementaryInputs(t *testing.T) {
	c := circuit.New(6)
	a := c.AddPI("a")
	na := c.AddGate(circuit.Not, a)
	g := c.AddGate(circuit.And, a, na)
	c.MarkPO(g)
	oc := mustOptimize(t, c)
	if oc.Gates[oc.POs[0]].Type != circuit.Const0 {
		t.Fatalf("a AND NOT a not folded to 0, got %s", oc.Gates[oc.POs[0]].Type)
	}
	// OR version folds to 1.
	c2 := circuit.New(6)
	a = c2.AddPI("a")
	na = c2.AddGate(circuit.Not, a)
	g = c2.AddGate(circuit.Or, a, na)
	c2.MarkPO(g)
	oc2 := mustOptimize(t, c2)
	if oc2.Gates[oc2.POs[0]].Type != circuit.Const1 {
		t.Fatalf("a OR NOT a not folded to 1, got %s", oc2.Gates[oc2.POs[0]].Type)
	}
}

func TestDuplicateInputs(t *testing.T) {
	c := circuit.New(6)
	a := c.AddPI("a")
	g := c.AddGate(circuit.And, a, a)
	c.MarkPO(g)
	oc := mustOptimize(t, c)
	if oc.POs[0] != oc.PIs[0] {
		t.Fatal("a AND a not simplified to a")
	}
}

func TestXorCancellation(t *testing.T) {
	c := circuit.New(8)
	a := c.AddPI("a")
	b := c.AddPI("b")
	g := c.AddGate(circuit.Xor, a, b, a) // = b
	c.MarkPO(g)
	oc := mustOptimize(t, c)
	if oc.POs[0] != oc.PIs[1] {
		t.Fatal("XOR(a,b,a) not simplified to b")
	}
	// Four copies cancel to constant 0.
	c2 := circuit.New(8)
	a = c2.AddPI("a")
	g = c2.AddGate(circuit.Xor, a, a, a, a)
	c2.MarkPO(g)
	oc2 := mustOptimize(t, c2)
	if oc2.Gates[oc2.POs[0]].Type != circuit.Const0 {
		t.Fatalf("XOR(a,a,a,a) = %s, want CONST0", oc2.Gates[oc2.POs[0]].Type)
	}
}

func TestXnorWithConstant(t *testing.T) {
	c := circuit.New(8)
	a := c.AddPI("a")
	b := c.AddPI("b")
	k1 := c.AddGate(circuit.Const1)
	g := c.AddGate(circuit.Xnor, a, b, k1) // = XOR(a,b)
	c.MarkPO(g)
	oc := mustOptimize(t, c)
	if oc.Gates[oc.POs[0]].Type != circuit.Xor {
		t.Fatalf("XNOR(a,b,1) = %s, want XOR", oc.Gates[oc.POs[0]].Type)
	}
	if !sim.EquivalentExhaustive(c, oc) {
		t.Fatal("fold changed function")
	}
}

func TestStructuralHashing(t *testing.T) {
	c := circuit.New(10)
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.AddGate(circuit.And, a, b)
	g2 := c.AddGate(circuit.And, b, a) // commutatively identical
	o := c.AddGate(circuit.Or, g1, g2) // = g1
	c.MarkPO(o)
	oc := mustOptimize(t, c)
	// g1 and g2 merge; OR(x,x) simplifies; the PO should be a single AND.
	if oc.Gates[oc.POs[0]].Type != circuit.And {
		t.Fatalf("PO gate = %s, want AND", oc.Gates[oc.POs[0]].Type)
	}
	nAnd := 0
	for _, g := range oc.Gates {
		if g.Type == circuit.And {
			nAnd++
		}
	}
	if nAnd != 1 {
		t.Fatalf("%d AND gates remain, want 1", nAnd)
	}
}

func TestDeadGateRemoval(t *testing.T) {
	c := circuit.New(8)
	a := c.AddPI("a")
	b := c.AddPI("b")
	g1 := c.AddGate(circuit.And, a, b)
	c.AddGate(circuit.Or, a, b) // dead
	c.MarkPO(g1)
	oc := mustOptimize(t, c)
	for _, g := range oc.Gates {
		if g.Type == circuit.Or {
			t.Fatal("dead OR gate survived")
		}
	}
	if len(oc.PIs) != 2 {
		t.Fatal("PIs must survive pruning")
	}
}

func TestDuplicatePOsPreserved(t *testing.T) {
	c := circuit.New(6)
	a := c.AddPI("a")
	b1 := c.AddGate(circuit.Buf, a)
	b2 := c.AddGate(circuit.Buf, a)
	c.MarkPO(b1)
	c.MarkPO(b2)
	oc := mustOptimize(t, c)
	if len(oc.POs) != 2 {
		t.Fatalf("PO count = %d, want 2", len(oc.POs))
	}
	if oc.POs[0] == oc.POs[1] {
		t.Fatal("POs collapsed onto one line")
	}
	if !sim.EquivalentExhaustive(c, oc) {
		t.Fatal("function changed")
	}
}

func TestOptimizeRejectsSequential(t *testing.T) {
	c := circuit.New(4)
	a := c.AddPI("a")
	d := c.AddGate(circuit.DFF, a)
	c.MarkPO(d)
	if _, err := Optimize(c); err == nil {
		t.Fatal("sequential circuit accepted")
	}
}

func TestOptimizeReachesFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		c := gen.Random(gen.RandomOptions{PIs: 8, Gates: 120, Seed: rng.Int63()})
		o1 := mustOptimize(t, c)
		o2 := mustOptimize(t, o1)
		if o2.NumGates() != o1.NumGates() {
			t.Fatalf("second optimization changed size: %d -> %d", o1.NumGates(), o2.NumGates())
		}
	}
}

func TestOptimizeRemovesRedundancy(t *testing.T) {
	// The generated circuits carry redundancy (the paper's unoptimized
	// versions); the optimizer should shave a measurable amount from the
	// ECC's NAND expansion.
	c := gen.ECC(8, false)
	oc := mustOptimize(t, c)
	if oc.NumGates() >= c.NumGates() {
		t.Fatalf("no reduction: %d -> %d", c.NumGates(), oc.NumGates())
	}
}
