package dedc

import (
	"testing"
)

func TestFacadeProveEquivalent(t *testing.T) {
	a := RippleAdder(4)
	b := CarrySelectAdder(4, 2)
	res, err := ProveEquivalent(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("adders not proven equivalent")
	}
	bad, _, err := InjectErrors(a, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ProveEquivalent(a, bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("erroneous circuit proven equivalent")
	}
	if len(res.Counterexample) != len(a.PIs) {
		t.Fatal("counterexample missing")
	}
}

func TestFacadeRepairProven(t *testing.T) {
	spec := Alu(4)
	bad, _, err := InjectErrors(spec, 1, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately weak vector set: the CEGAR loop has to earn its keep.
	vecs := RandomVectors(spec, 32, 4)
	res, err := RepairProven(bad, spec, vecs, Options{MaxErrors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatalf("repair not proven (iterations %d)", res.Iterations)
	}
	eq, err := ProveEquivalent(res.Repaired, spec, 0)
	if err != nil || !eq.Equivalent {
		t.Fatal("final repair fails independent certification")
	}
}

func TestFacadeBridgeDiagnosis(t *testing.T) {
	c := Alu(4)
	br := Bridge{A: c.PIs[0], B: c.PIs[4], Kind: WiredAnd}
	device, err := InjectBridge(c, br)
	if err != nil {
		t.Fatal(err)
	}
	vecs := BuildVectors(c, VectorOptions{Random: 512, Seed: 6})
	devOut := Responses(device, vecs)
	res := DiagnosePhysical(c, devOut, vecs, c.NumLines(), Options{MaxErrors: 2})
	if len(res.Solutions) == 0 {
		t.Fatal("bridge behaviour unexplained")
	}
	for _, s := range res.Solutions {
		fixed := c.Clone()
		for _, corr := range s.Corrections {
			if err := corr.Apply(fixed); err != nil {
				t.Fatal(err)
			}
		}
		if !Equivalent(fixed, device, vecs) {
			t.Fatalf("solution %v does not reproduce the device", s.Corrections)
		}
	}
}

func TestFacadeAdaptiveDiagnosis(t *testing.T) {
	c, err := Optimize(Alu(4))
	if err != nil {
		t.Fatal(err)
	}
	sites := FaultSites(c)
	ft := Fault{Site: sites[10], Value: true}
	device := InjectFaults(c, ft)
	vecs := RandomVectors(c, 32, 3)
	res, err := DiagnoseAdaptive(c, device, vecs, Options{MaxErrors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Skip("fault unobservable on the weak set")
	}
	if len(res.Classes) != 1 {
		t.Fatalf("%d classes remain after adaptive refinement", len(res.Classes))
	}
	// Partition + Distinguish round trip.
	classes, err := PartitionTuples(c, res.Tuples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 {
		t.Fatal("partition disagrees with adaptive result")
	}
}

func TestFacadeUnroll(t *testing.T) {
	src := `
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
`
	c, err := ReadBenchString(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Unroll(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.IsSequential() {
		t.Fatal("unrolled circuit still sequential")
	}
	// 3 frames of 1 PI + 1 initial state = 4 PIs.
	if len(u.PIs) != 4 {
		t.Fatalf("PIs = %d, want 4", len(u.PIs))
	}
}
