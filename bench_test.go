package dedc

// Benchmark harness: one benchmark per table cell of the paper's evaluation
// plus the ablation benches DESIGN.md calls out. Absolute times differ from
// the paper's 2002 SUN Ultra 5; the shapes (scaling with fault/error count,
// node counts, screen effectiveness) are the reproduction target. Run with:
//
//	go test -bench=. -benchmem
//
// Full-suite table generation (all circuits, 10 trials) lives in cmd/tables;
// the gated tests TestGenerateTable1/2 print reduced versions here.
import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"dedc/internal/diagnose"
	"dedc/internal/equiv"
	"dedc/internal/errmodel"
	"dedc/internal/experiment"
	"dedc/internal/fault"
	"dedc/internal/gen"
	"dedc/internal/opt"
	"dedc/internal/pathtrace"
	"dedc/internal/sim"
	"dedc/internal/tpg"
)

// benchCase holds a prepared diagnosis workload shared across b.N runs.
type benchCase struct {
	ckt    *Circuit
	vecs   *tpg.Result
	refOut [][]uint64
	k      int
}

// prepareStuckAt injects k observable faults into the optimized benchmark.
func prepareStuckAt(b *testing.B, name string, k int) benchCase {
	b.Helper()
	bm, ok := gen.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	c, vecs, err := experiment.Prepare(bm, true, experiment.Config{Vectors: 2048, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(k) * 13))
	sites := fault.Sites(c)
	goodOut := diagnose.DeviceOutputs(c, vecs.PI, vecs.N)
	for tries := 0; ; tries++ {
		if tries > 50 {
			b.Fatal("no observable fault set")
		}
		var fs []fault.Fault
		seen := map[fault.Site]bool{}
		for len(fs) < k {
			s := sites[rng.Intn(len(sites))]
			if seen[s] {
				continue
			}
			seen[s] = true
			fs = append(fs, fault.Fault{Site: s, Value: rng.Intn(2) == 1})
		}
		device := fault.Inject(c, fs...)
		devOut := diagnose.DeviceOutputs(device, vecs.PI, vecs.N)
		if !same(devOut, goodOut) {
			return benchCase{ckt: c, vecs: vecs, refOut: devOut, k: k}
		}
	}
}

// prepareDEDC injects k observable design errors into the unoptimized
// benchmark and returns the corrupted circuit plus the spec responses.
func prepareDEDC(b *testing.B, name string, k int) (bad *Circuit, bc benchCase) {
	b.Helper()
	bm, ok := gen.ByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	c, vecs, err := experiment.Prepare(bm, false, experiment.Config{Vectors: 2048, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	specOut := diagnose.DeviceOutputs(c, vecs.PI, vecs.N)
	bad, _, err = errmodel.Inject(c, k, errmodel.InjectOptions{
		Seed: int64(k) * 19, CheckPatterns: vecs.PI, N: vecs.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	return bad, benchCase{ckt: c, vecs: vecs, refOut: specOut, k: k}
}

func same(a, b [][]uint64) bool {
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// table1Circuits is the bench subset of Table 1's rows (the full set runs
// via cmd/tables; these keep `go test -bench` under control).
var table1Circuits = []string{"c432*", "c880*", "c1355*", "c6288*"}

// BenchmarkTable1 regenerates Table 1 cells: exact all-tuples stuck-at
// diagnosis with 1..4 injected faults per circuit.
func BenchmarkTable1(b *testing.B) {
	for _, name := range table1Circuits {
		for k := 1; k <= 4; k++ {
			b.Run(fmt.Sprintf("%s/%dfault", name, k), func(b *testing.B) {
				bc := prepareStuckAt(b, name, k)
				var tuples, nodes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := diagnose.DiagnoseStuckAt(bc.ckt, bc.refOut, bc.vecs.PI, bc.vecs.N,
						diagnose.Options{MaxErrors: k})
					tuples = len(res.Tuples)
					nodes = res.Stats.Nodes
				}
				b.ReportMetric(float64(tuples), "tuples")
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// table2Circuits is the bench subset of Table 2's rows.
var table2Circuits = []string{"c432*", "c880*", "c1355*", "c6288*"}

// BenchmarkTable2 regenerates Table 2 cells: first-solution DEDC with 3 and
// 4 injected design errors per circuit.
func BenchmarkTable2(b *testing.B) {
	for _, name := range table2Circuits {
		for _, k := range []int{3, 4} {
			b.Run(fmt.Sprintf("%s/%derror", name, k), func(b *testing.B) {
				bad, bc := prepareDEDC(b, name, k)
				var nodes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := diagnose.Repair(bad, bc.refOut, bc.vecs.PI, bc.vecs.N,
						diagnose.Options{MaxErrors: k + 1})
					if err != nil {
						b.Fatalf("repair failed: %v", err)
					}
					nodes = rep.Stats.Nodes
				}
				b.ReportMetric(float64(nodes), "nodes")
			})
		}
	}
}

// BenchmarkScanTable1 covers the sequential rows of Table 1 through the
// full-scan view (2 faults as the representative cell).
func BenchmarkScanTable1(b *testing.B) {
	for _, name := range []string{"s1196*", "s1423*"} {
		b.Run(name, func(b *testing.B) {
			bc := prepareStuckAt(b, name, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				diagnose.DiagnoseStuckAt(bc.ckt, bc.refOut, bc.vecs.PI, bc.vecs.N,
					diagnose.Options{MaxErrors: 2})
			}
		})
	}
}

// BenchmarkTraversalPolicy is the Fig. 2 ablation: the paper's round-based
// BFS/DFS trade-off against the pure policies it rejects.
func BenchmarkTraversalPolicy(b *testing.B) {
	bad, bc := prepareDEDC(b, "c880*", 3)
	for _, pc := range []struct {
		name string
		pol  diagnose.Policy
	}{{"rounds", diagnose.PolicyRounds}, {"dfs", diagnose.PolicyDFS}, {"bfs", diagnose.PolicyBFS}} {
		b.Run(pc.name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				rep, err := diagnose.Repair(bad, bc.refOut, bc.vecs.PI, bc.vecs.N,
					diagnose.Options{MaxErrors: 4, Policy: pc.pol})
				if err != nil {
					b.Skipf("policy %s failed: %v", pc.name, err)
				}
				nodes = rep.Stats.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkH2Schedule is the Theorem-1 screen ablation: how many full trial
// propagations the cheap local screen saves at each threshold.
func BenchmarkH2Schedule(b *testing.B) {
	bad, bc := prepareDEDC(b, "c880*", 2)
	model := diagnose.NewErrorModel(bad, 0, 1)
	for _, h2 := range []float64{0.0, 0.3, 0.5, 0.7, 1.0} {
		b.Run(fmt.Sprintf("h2=%.1f", h2), func(b *testing.B) {
			var trials int
			for i := 0; i < b.N; i++ {
				cands := diagnose.AuditRoot(bad, bc.refOut, bc.vecs.PI, bc.vecs.N, model,
					diagnose.Options{MaxCorrectionsPerNode: 1 << 20},
					diagnose.Params{H1: 0.3, H2: h2, H3: 0.85})
				trials = len(cands)
			}
			b.ReportMetric(float64(trials), "cands")
		})
	}
}

// BenchmarkPathTraceKeep ablates the 5-20% path-trace keep fraction.
func BenchmarkPathTraceKeep(b *testing.B) {
	bad, bc := prepareDEDC(b, "c880*", 2)
	for _, keep := range []float64{0.05, 0.10, 0.20} {
		b.Run(fmt.Sprintf("keep=%.0f%%", keep*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := diagnose.Repair(bad, bc.refOut, bc.vecs.PI, bc.vecs.N,
					diagnose.Options{MaxErrors: 3, PathTraceKeep: keep})
				if err != nil {
					b.Skipf("keep=%v failed: %v", keep, err)
				}
				_ = rep
			}
		})
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := diagnose.Repair(bad, bc.refOut, bc.vecs.PI, bc.vecs.N,
				diagnose.Options{MaxErrors: 3, DisablePathTrace: true})
			if err != nil {
				b.Skipf("disabled failed: %v", err)
			}
			_ = rep
		}
	})
}

// BenchmarkH3Allowance ablates the Vcorr screen allowance on the NAND-XOR
// structure the paper singles out (the NAND-expanded ECC): strict 0.95
// versus the 0.80-0.85 the paper recommends for such circuits.
func BenchmarkH3Allowance(b *testing.B) {
	bad, bc := prepareDEDC(b, "c1355*", 2)
	for _, h3 := range []float64{0.95, 0.85, 0.80} {
		b.Run(fmt.Sprintf("h3=%.2f", h3), func(b *testing.B) {
			sched := []diagnose.Params{{H1: 0.3, H2: 0.5, H3: h3}, {H1: 0.1, H2: 0.3, H3: h3}}
			var nodes int
			for i := 0; i < b.N; i++ {
				rep, err := diagnose.Repair(bad, bc.refOut, bc.vecs.PI, bc.vecs.N,
					diagnose.Options{MaxErrors: 3, Schedule: sched})
				if err != nil {
					b.Skipf("h3=%v failed: %v", h3, err)
				}
				nodes = rep.Stats.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkSubstrates measures the supporting machinery the diagnosis inner
// loop leans on.
func BenchmarkSubstrates(b *testing.B) {
	bm, _ := gen.ByName("c6288*")
	c := bm.Build()
	n := 2048
	pi := sim.RandomPatterns(len(c.PIs), n, 1)
	c.Topo()
	b.Run("simulate/c6288", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Simulate(c, pi, n)
		}
	})
	b.Run("engine-trial/c6288", func(b *testing.B) {
		e := sim.NewEngine(c, pi, n)
		forced := make([]uint64, e.W)
		rng := rand.New(rand.NewSource(2))
		for i := range forced {
			forced[i] = rng.Uint64()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Trial(Line(i%c.NumLines()), forced)
		}
	})
	b.Run("pathtrace/c6288", func(b *testing.B) {
		sites := fault.Sites(c)
		device := fault.Inject(c, fault.Fault{Site: sites[100], Value: true})
		devOut := diagnose.DeviceOutputs(device, pi, n)
		val := sim.Simulate(c, pi, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pathtrace.Trace(c, val, devOut, n)
		}
	})
	b.Run("faultsim/c880", func(b *testing.B) {
		bm2, _ := gen.ByName("c880*")
		c2 := bm2.Build()
		pi2 := sim.RandomPatterns(len(c2.PIs), n, 3)
		reps, _ := fault.Collapse(c2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fault.Detected(c2, reps, pi2, n)
		}
	})
	b.Run("podem/c880", func(b *testing.B) {
		bm2, _ := gen.ByName("c880*")
		c2 := bm2.Build()
		reps, _ := fault.Collapse(c2)
		p := tpg.NewPodem(c2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Generate(reps[i%len(reps)])
		}
	})
}

// BenchmarkEquivalence measures the SAT-based formal checker on proof
// (UNSAT) and refutation (SAT) workloads.
func BenchmarkEquivalence(b *testing.B) {
	b.Run("prove/alu12-vs-optimized", func(b *testing.B) {
		c := gen.Alu(12)
		oc, err := opt.Optimize(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := equiv.Check(c, oc, equiv.Options{})
			if err != nil || !res.Equivalent {
				b.Fatal("proof failed")
			}
		}
	})
	b.Run("refute/alu12-one-error", func(b *testing.B) {
		c := gen.Alu(12)
		bad, _, err := errmodel.Inject(c, 1, errmodel.InjectOptions{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := equiv.Check(c, bad, equiv.Options{})
			if err != nil || res.Equivalent {
				b.Fatal("refutation failed")
			}
		}
	})
}

// BenchmarkRepairProven measures the CEGAR loop (repair + SAT certification
// + counterexample folding) from a weak initial vector set.
func BenchmarkRepairProven(b *testing.B) {
	spec := gen.Alu(6)
	bad, _, err := errmodel.Inject(spec, 1, errmodel.InjectOptions{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	pi := sim.RandomPatterns(len(spec.PIs), 32, 4)
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := diagnose.RepairProven(bad, spec, pi, 32, diagnose.Options{MaxErrors: 2}, 0, 0)
		if err != nil || !res.Proven {
			b.Fatal("CEGAR failed")
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// TestGenerateTable1 prints a reduced Table 1 (set DEDC_FULL=1 for the full
// suite at 10 trials, as used for EXPERIMENTS.md).
func TestGenerateTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation in -short mode")
	}
	cfg := experiment.Config{Trials: 3, Vectors: 1024, Seed: 1}
	names := []string{"c432*", "c880*"}
	counts := []int{1, 2}
	if os.Getenv("DEDC_FULL") != "" {
		cfg.Trials = 10
		cfg.Vectors = 2048
		names = nil
		for _, bm := range gen.Suite() {
			names = append(names, bm.Name)
		}
		counts = []int{1, 2, 3, 4}
	}
	var rows []experiment.Table1Row
	for _, name := range names {
		bm, _ := gen.ByName(name)
		row, err := experiment.RunTable1Row(bm, counts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows = append(rows, row)
		for _, cell := range row.Cells {
			if cell.Runs > 0 && cell.Failed == cell.Runs {
				t.Errorf("%s with %d faults: every run failed", name, cell.Faults)
			}
		}
	}
	var sb osWriter
	experiment.WriteTable1(&sb, rows)
	t.Logf("Table 1 (reduced):\n%s", sb.s)
}

// TestGenerateTable2 prints a reduced Table 2.
func TestGenerateTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation in -short mode")
	}
	cfg := experiment.Config{Trials: 3, Vectors: 1024, Seed: 1}
	names := []string{"c432*", "c880*"}
	counts := []int{3}
	if os.Getenv("DEDC_FULL") != "" {
		cfg.Trials = 10
		cfg.Vectors = 2048
		names = nil
		for _, bm := range gen.Suite() {
			names = append(names, bm.Name)
		}
		counts = []int{3, 4}
	}
	var rows []experiment.Table2Row
	for _, name := range names {
		bm, _ := gen.ByName(name)
		row, err := experiment.RunTable2Row(bm, counts, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows = append(rows, row)
		for _, cell := range row.Cells {
			if cell.Runs > 0 && cell.Failed == cell.Runs {
				t.Errorf("%s with %d errors: every run failed", name, cell.Errors)
			}
		}
	}
	var sb osWriter
	experiment.WriteTable2(&sb, rows)
	t.Logf("Table 2 (reduced):\n%s", sb.s)
}

// TestFaultMaskingObservation reproduces the §4.1 masking check on a scan
// circuit.
func TestFaultMaskingObservation(t *testing.T) {
	if testing.Short() {
		t.Skip("masking study in -short mode")
	}
	bm, _ := gen.ByName("s1196*")
	rate, runs, err := experiment.FaultMaskingRate(bm, 4, experiment.Config{Trials: 5, Vectors: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Skip("no explainable runs")
	}
	t.Logf("fault masking at 4 faults on %s: %.0f%% of %d runs (paper: >30%% on ISCAS'89)", bm.Name, 100*rate, runs)
}

type osWriter struct{ s string }

func (w *osWriter) Write(p []byte) (int, error) {
	w.s += string(p)
	return len(p), nil
}
