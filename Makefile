# Build, test and robustness gates for the dedc library and tools.
#
#   make ci              — everything a pull request must pass
#   make check           — ci plus the telemetry gates
#   make fuzz            — short fuzzing pass over the .bench parser
#   make chaos           — fault-injection trials under the race detector
#   make chaos-resume    — SIGKILL/resume convergence trials (race build)
#   make chaos-store     — SIGKILL dedcd mid-workload; the durable store must
#                          lose nothing and finish every job after restart
#   make stream-chaos    — SIGKILL dedcd mid-SSE-stream; resuming clients must
#                          converge on the exact persisted lifecycle
#   make chaos-fleet     — SIGKILL replicas of a 3-node dedcd fleet (biased
#                          toward the store owner); failover within 2× lease
#                          TTL, no job lost, solutions identical
#   make bench-telemetry — disabled-telemetry overhead gate (≤2%)
#   make journal-check   — end-to-end run journal validation
#   make bench           — record the quick perf suite to BENCH_core.json
#   make bench-compare BASELINE=BENCH_core.json
#                        — gate the quick suite (>10% + 250µs per phase fails)
#   make bench-parallel  — engine-pool speedup gate (warn-only on the quick
#                          suite; SUITE=full enforces ≥ MINSPEEDUP at 4 workers)
#   make bench-atpg      — ATPG/SAT reuse gate: the vectors_cached and
#                          satcheck_inc phases must beat their cold pairs by
#                          MINATPGSPEEDUP combined (demoted to a warning on
#                          single-CPU hosts, where the timings are too noisy)
#   make bench-service   — service-tier SLO suite (cmd/dedcload drives real
#                          dedcd processes); gates against BENCH_service.json
#                          when recorded, records it otherwise

GO ?= go
FUZZTIME ?= 10s
BASELINE ?= BENCH_core.json
# The bench suite always measures the engine pool at a fixed worker count so
# BENCH_core.json phase names (h1rank_w4, screen_w4) don't depend on the
# recording machine's core count.
BENCHWORKERS ?= 4
MINSPEEDUP ?= 1.5
MINATPGSPEEDUP ?= 5
SUITE ?= quick

.PHONY: all build vet test race fuzz chaos chaos-resume chaos-store \
	stream-chaos chaos-fleet ci check bench-telemetry journal-check bench \
	bench-compare bench-check bench-parallel bench-atpg bench-service clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Native fuzzing of the .bench parser, seeded from the checked-in corpus in
# internal/bench/testdata/fuzz plus the f.Add seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzDirectiveEdgeCases -fuzztime $(FUZZTIME) ./internal/bench

# The chaos harness: corrupted-input and randomized-cancellation trials must
# hold "no panic, well-formed partial results" under the race detector.
chaos:
	$(GO) test -race -count 1 ./internal/chaos

# Crash-only gate: SIGKILL journaled dedc runs at random points (the killed
# binary itself built with -race) and require every -resume to converge to
# the uninterrupted run's exact solution set.
chaos-resume:
	CHAOS_RESUME_TRIALS=50 CHAOS_RESUME_RACE=1 \
		$(GO) test -race -count 1 -run TestChaosResume -timeout 30m ./cmd/dedc

# Durable-store gate: SIGKILL dedcd (race build) at random points mid-workload,
# restart over the same store directory, and require every accepted job to
# reach a terminal state with solutions identical to an uninterrupted run.
# Also scales up the store-corruption trials (damaged log/snapshot must recover
# cleanly or fail typed — never panic or fabricate state).
chaos-store:
	CHAOS_STORE_TRIALS=50 CHAOS_STORE_RACE=1 \
		$(GO) test -race -count 1 -run 'TestChaosStoreKill|TestRestartResumesFromCheckpoint' \
		-timeout 30m ./cmd/dedcd
	CHAOS_STORE_CORRUPT_TRIALS=1000 \
		$(GO) test -race -count 1 -run TestStoreCorruptionTrials -timeout 30m ./internal/chaos

# Streaming-status gate: SSE clients tail a job while dedcd is SIGKILLed and
# restarted on the same address/store; every client's Last-Event-ID resume
# must converge on the persisted timeline exactly once, no holes, no dupes.
stream-chaos:
	CHAOS_STREAM_TRIALS=25 \
		$(GO) test -race -count 1 -run TestChaosStream -timeout 30m ./cmd/dedcd

# Replica-fleet gate: three dedcd replicas (race build) share one store
# directory; 50 SIGKILLs land on them under submit load, biased toward the
# store owner. Every owner kill must elect a new owner within 2× the lease
# TTL, no accepted job may be lost or settled twice, and every job's solution
# set must match an uninterrupted run.
chaos-fleet:
	CHAOS_FLEET_TRIALS=50 CHAOS_FLEET_RACE=1 \
		$(GO) test -race -count 1 -run TestChaosFleetKill -timeout 30m ./cmd/dedcd

ci: vet build race fuzz

# Measures Engine.Trial three ways (uninstrumented reference, telemetry
# disabled, telemetry enabled) and fails when the disabled path — the default
# everyone runs — costs more than 2% over the reference. Writes the
# machine-readable report to BENCH_telemetry.json.
bench-telemetry:
	TELEMETRY_BENCH=1 TELEMETRY_BENCH_OUT=$(CURDIR)/BENCH_telemetry.json \
		$(GO) test -run TestTelemetryOverhead -count 1 -v ./internal/sim

# End-to-end journal validation: diagnose an injected double fault with
# -journal on, then verify every event against the schema and that the spans
# balance and the chosen corrections are reconstructable.
journal-check:
	rm -rf .journal-check && mkdir .journal-check
	$(GO) run ./cmd/genckt -ckt alu4 -o .journal-check/ckt.bench
	$(GO) run ./cmd/inject -in .journal-check/ckt.bench -faults 2 -seed 7 \
		-o .journal-check/bad.bench
	$(GO) run ./cmd/dedc -impl .journal-check/ckt.bench \
		-device .journal-check/bad.bench -stuckat -random 512 \
		-journal .journal-check/run.jsonl > /dev/null
	$(GO) run ./cmd/journalcheck .journal-check/run.jsonl
	$(GO) run ./cmd/journalcheck -resume-point .journal-check/run.jsonl
	rm -rf .journal-check

# Core-pipeline benchmark suite (internal/perf via cmd/dedcbench): phase-by-
# phase ns/op, allocs/op and counter deltas over generated circuits.
bench:
	$(GO) run ./cmd/dedcbench -suite quick -workers $(BENCHWORKERS) -o BENCH_core.json

# Regression gate against a recorded baseline: a phase more than 10% + 250µs
# slower (after a confirming re-measure) fails with exit status 2.
bench-compare:
	$(GO) run ./cmd/dedcbench -suite quick -q -workers $(BENCHWORKERS) -baseline $(BASELINE)

# The make-check flavor: gate against BENCH_core.json when one is recorded,
# record it otherwise, so a fresh checkout bootstraps its own baseline.
bench-check:
	@if [ -f BENCH_core.json ]; then \
		$(GO) run ./cmd/dedcbench -suite quick -q -workers $(BENCHWORKERS) -baseline BENCH_core.json; \
	else \
		$(GO) run ./cmd/dedcbench -suite quick -q -workers $(BENCHWORKERS) -o BENCH_core.json; \
	fi

# Service-tier SLO gate: build dedcd and dedcload fresh, drive one daemon per
# scenario with open-loop Poisson load, and compare per-scenario latency,
# queue-wait, throughput, shed rate and process ceilings against the recorded
# baseline (confirm-by-re-measure; exit 2 on a surviving regression). Like
# bench-check, a missing BENCH_service.json is recorded instead of gated so a
# fresh checkout bootstraps itself.
bench-service:
	rm -rf .bench-service && mkdir .bench-service
	$(GO) build -o .bench-service/dedcd ./cmd/dedcd
	$(GO) build -o .bench-service/dedcload ./cmd/dedcload
	@if [ -f BENCH_service.json ]; then \
		./.bench-service/dedcload -dedcd ./.bench-service/dedcd -q -baseline BENCH_service.json; \
	else \
		./.bench-service/dedcload -dedcd ./.bench-service/dedcd -q -o BENCH_service.json; \
	fi
	rm -rf .bench-service

# Engine-pool speedup gate: the h1rank/screen pool variants must beat the
# pinned sequential phases by MINSPEEDUP (geomean across scenarios) at 4
# workers. Enforced on the full suite (SUITE=full); warn-only on quick, whose
# circuits are too small for the shards to amortize reliably. dedcbench also
# demotes the gate to a warning on hosts with fewer CPUs than workers, where
# no speedup is physically measurable.
bench-parallel:
	@if [ "$(SUITE)" = "full" ]; then \
		$(GO) run ./cmd/dedcbench -suite full -q -workers $(BENCHWORKERS) -min-speedup $(MINSPEEDUP); \
	else \
		$(GO) run ./cmd/dedcbench -suite $(SUITE) -q -workers $(BENCHWORKERS) -min-speedup $(MINSPEEDUP) -speedup-warn; \
	fi

# ATPG/SAT reuse gate: a repeated-circuit workload must see the cache-hit
# vectors phase and the incremental-SAT re-check beat their cold counterparts
# by MINATPGSPEEDUP, combined geomean across scenarios. These wins come from
# reuse, not parallelism, so the bar holds on any core count — but dedcbench
# still demotes the gate to a warning on single-CPU hosts, where micro-runs
# share the core with the OS and warm timings get too noisy to enforce.
bench-atpg:
	$(GO) run ./cmd/dedcbench -suite quick -q -workers $(BENCHWORKERS) \
		-min-atpg-speedup $(MINATPGSPEEDUP)

check: ci journal-check bench-telemetry bench-check bench-parallel bench-atpg bench-service chaos-resume chaos-store stream-chaos chaos-fleet

clean:
	$(GO) clean ./...
	rm -rf .journal-check .bench-service
