# Build, test and robustness gates for the dedc library and tools.
#
#   make ci      — everything a pull request must pass
#   make fuzz    — short fuzzing pass over the .bench parser
#   make chaos   — fault-injection trials under the race detector

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz chaos ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Native fuzzing of the .bench parser, seeded from the checked-in corpus in
# internal/bench/testdata/fuzz plus the f.Add seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/bench
	$(GO) test -run '^$$' -fuzz FuzzDirectiveEdgeCases -fuzztime $(FUZZTIME) ./internal/bench

# The chaos harness: corrupted-input and randomized-cancellation trials must
# hold "no panic, well-formed partial results" under the race detector.
chaos:
	$(GO) test -race -count 1 ./internal/chaos

ci: vet build race fuzz

clean:
	$(GO) clean ./...
