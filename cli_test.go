package dedc

// End-to-end CLI pipeline test: builds the command binaries and drives the
// full tool flow — generate, corrupt, build vectors, repair, formally
// verify — exactly as a user at a shell would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", filepath.Base(bin), args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	genckt := buildTool(t, dir, "genckt")
	inject := buildTool(t, dir, "inject")
	atpg := buildTool(t, dir, "atpg")
	dedcBin := buildTool(t, dir, "dedc")
	equivBin := buildTool(t, dir, "equiv")

	good := filepath.Join(dir, "good.bench")
	bad := filepath.Join(dir, "bad.bench")
	vec := filepath.Join(dir, "v.vec")
	fixed := filepath.Join(dir, "fixed.bench")

	// genckt: emit an ALU netlist.
	run(t, genckt, "-kind", "alu", "-width", "4", "-o", good)
	if fi, err := os.Stat(good); err != nil || fi.Size() == 0 {
		t.Fatal("genckt produced nothing")
	}

	// inject: corrupt with 2 design errors.
	_, stderr := run(t, inject, "-in", good, "-errors", "2", "-seed", "5", "-o", bad)
	if !strings.Contains(stderr, "injected error") {
		t.Fatalf("inject did not report errors: %s", stderr)
	}

	// equiv: must detect the difference.
	cmd := exec.Command(equivBin, "-a", good, "-b", bad)
	out, _ := cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() != 1 || !strings.Contains(string(out), "NOT EQUIVALENT") {
		t.Fatalf("equiv missed the corruption: %s", out)
	}

	// atpg: vectors with deterministic top-up.
	_, stderr = run(t, atpg, "-in", good, "-random", "512", "-det", "-o", vec)
	if !strings.Contains(stderr, "coverage") {
		t.Fatalf("atpg reported nothing: %s", stderr)
	}

	// dedc: repair against the spec using the vector file.
	_, stderr = run(t, dedcBin, "-impl", bad, "-spec", good, "-vec", vec, "-o", fixed)
	if !strings.Contains(stderr, "corrections (") {
		t.Fatalf("dedc did not repair: %s", stderr)
	}

	// equiv: the repair must now be formally equivalent.
	sout, _ := run(t, equivBin, "-a", good, "-b", fixed)
	if !strings.Contains(sout, "EQUIVALENT") || strings.Contains(sout, "NOT EQUIVALENT") {
		t.Fatalf("repair not proven equivalent: %s", sout)
	}

	// dedc stuck-at mode: inject faults, diagnose tuples.
	faulty := filepath.Join(dir, "faulty.bench")
	run(t, inject, "-in", good, "-faults", "2", "-seed", "9", "-o", faulty)
	sout, stderr = run(t, dedcBin, "-impl", good, "-device", faulty, "-stuckat", "-vec", vec)
	if !strings.Contains(stderr, "minimal tuple") || strings.TrimSpace(sout) == "" {
		t.Fatalf("stuck-at diagnosis produced nothing: %s / %s", sout, stderr)
	}

	// dedc -timeout: an immediately-expiring deadline must degrade
	// gracefully — exit 2, truncation status reported, no panic.
	cmd = exec.Command(dedcBin, "-impl", bad, "-spec", good, "-vec", vec, "-timeout", "1ns")
	out, _ = cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() != 2 {
		t.Fatalf("timed-out repair exited %d, want 2: %s", cmd.ProcessState.ExitCode(), out)
	}
	if !strings.Contains(string(out), "TimedOut") {
		t.Fatalf("timed-out repair did not report its status: %s", out)
	}

	// Malformed input keeps exit code 1 (usage/input error class).
	garbage := filepath.Join(dir, "garbage.bench")
	if err := os.WriteFile(garbage, []byte("INPUT(a)\nG1 = FROB(a)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(dedcBin, "-impl", garbage, "-spec", good)
	out, _ = cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() != 1 {
		t.Fatalf("garbage input exited %d, want 1: %s", cmd.ProcessState.ExitCode(), out)
	}
	if !strings.Contains(string(out), "line 2") {
		t.Fatalf("parse error lacks position: %s", out)
	}
}
